"""Shared machinery for backends running the :mod:`jitcore` kernels.

The numba backend runs them JIT-compiled over uint64 arrays; the
pyloops backend runs the *same functions* as pure Python over object
arrays (exact big-int arithmetic, masked to 64 bits by the kernels
themselves).  Everything above the kernel call — broadcast
normalisation to the flat "modulus constant per row" layout, Barrett
pack memoisation, NTT table preparation — is identical and lives here.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import ParameterError
from repro.polymath.kernels import KernelBackend, NttTables
from repro.polymath.kernels import jitcore

#: NTT-friendly warmup basis: primes ≡ 1 (mod 64) for degree 32.
_WARMUP_MODULI = (193, 257)
_WARMUP_DEGREE = 32


class JitStyleBackend(KernelBackend):
    """Base for backends whose kernels take flat rows + per-row packs."""

    max_modulus_bits = jitcore.JIT_MAX_MODULUS_BITS

    def __init__(self):
        self._pack_lock = threading.Lock()
        self._pack_cache: dict[bytes, tuple] = {}

    # -- representation hooks (pyloops converts to/from object arrays) ----

    def _kernel(self, name: str):
        raise NotImplementedError

    def _wrap(self, arr: np.ndarray) -> np.ndarray:
        """Input uint64 array -> the representation the kernels consume."""
        return arr

    def _alloc(self, shape) -> np.ndarray:
        """Output array in kernel representation."""
        return np.empty(shape, dtype=np.uint64)

    def _unwrap(self, arr: np.ndarray) -> np.ndarray:
        """Kernel representation -> uint64 ndarray."""
        return arr

    # -- broadcast normalisation ------------------------------------------

    def _fallback(self):
        from repro.polymath.kernels import get_backend

        return get_backend("numpy")

    def _layout(self, q, *ops):
        """Broadcast operands to the flat per-row-modulus layout.

        Returns ``(shape, n, flat_operands, q_rows)`` or ``None`` when
        the layout is exotic (0-d/empty results, or a modulus varying
        along the last axis) — those fall back to the numpy reference,
        which is bit-identical by contract.
        """
        arrs = [np.asarray(x, dtype=np.uint64) for x in ops]
        qa = np.asarray(q, dtype=np.uint64)
        shape = np.broadcast_shapes(qa.shape, *[a.shape for a in arrs])
        if shape == () or 0 in shape or (qa.ndim and qa.shape[-1] != 1):
            return None
        n = shape[-1]
        flat = [
            np.ascontiguousarray(np.broadcast_to(a, shape)).reshape(-1)
            for a in arrs
        ]
        q_rows = np.ascontiguousarray(
            np.broadcast_to(qa, shape[:-1] + (1,))).reshape(-1)
        return shape, n, flat, q_rows

    def _barrett_pack(self, q_rows: np.ndarray) -> tuple:
        """Memoised ``(q, c_hi, c_lo)`` in kernel representation."""
        key = q_rows.tobytes()
        hit = self._pack_cache.get(key)
        if hit is not None:
            return hit
        with self._pack_lock:
            hit = self._pack_cache.get(key)
            if hit is None:
                q, c_hi, c_lo = jitcore.barrett_pack(q_rows.tolist())
                hit = (self._wrap(q), self._wrap(c_hi), self._wrap(c_lo))
                if len(self._pack_cache) > 512:
                    self._pack_cache.clear()
                self._pack_cache[key] = hit
            return hit

    # -- elementwise ------------------------------------------------------

    def _binary(self, kernel_name: str, a, b, q):
        layout = self._layout(q, a, b)
        if layout is None:
            fb = self._fallback()
            return getattr(fb, kernel_name.replace("k_", ""))(a, b, q)
        shape, n, (fa, fb_), q_rows = layout
        out = self._alloc(fa.shape[0])
        self._kernel(kernel_name)(
            self._wrap(fa), self._wrap(fb_), self._wrap(q_rows), n, out)
        return self._unwrap(out).reshape(shape)

    def add_mod(self, a, b, q):
        return self._binary("k_add_mod", a, b, q)

    def sub_mod(self, a, b, q):
        return self._binary("k_sub_mod", a, b, q)

    def neg_mod(self, a, q):
        layout = self._layout(q, a)
        if layout is None:
            return self._fallback().neg_mod(a, q)
        shape, n, (fa,), q_rows = layout
        out = self._alloc(fa.shape[0])
        self._kernel("k_neg_mod")(self._wrap(fa), self._wrap(q_rows), n, out)
        return self._unwrap(out).reshape(shape)

    def mul_mod(self, a, b, q):
        layout = self._layout(q, a, b)
        if layout is None:
            return self._fallback().mul_mod(a, b, q)
        shape, n, (fa, fb_), q_rows = layout
        q_k, c_hi, c_lo = self._barrett_pack(q_rows)
        out = self._alloc(fa.shape[0])
        self._kernel("k_mul_mod")(
            self._wrap(fa), self._wrap(fb_), q_k, c_hi, c_lo, n, out)
        return self._unwrap(out).reshape(shape)

    def mod_reduce(self, a, q):
        layout = self._layout(q, a)
        if layout is None:
            return self._fallback().mod_reduce(a, q)
        shape, n, (fa,), q_rows = layout
        out = self._alloc(fa.shape[0])
        self._kernel("k_mod_reduce")(
            self._wrap(fa), self._wrap(q_rows), n, out)
        return self._unwrap(out).reshape(shape)

    # -- NTT --------------------------------------------------------------

    def _ntt_pack(self, tables: NttTables) -> dict:
        q, c_hi, c_lo = jitcore.barrett_pack(tables.moduli)
        return {
            "q": self._wrap(q),
            "psi": self._wrap(np.ascontiguousarray(tables.psi_rev)),
            "psi_inv": self._wrap(np.ascontiguousarray(tables.psi_inv_rev)),
            "psi_sh": self._wrap(
                jitcore.shoup_pack(tables.psi_rev, tables.moduli)),
            "psi_inv_sh": self._wrap(
                jitcore.shoup_pack(tables.psi_inv_rev, tables.moduli)),
            "n_inv": self._wrap(tables.n_inv),
            "n_inv_sh": self._wrap(
                jitcore.shoup_pack(tables.n_inv, tables.moduli)),
        }

    def _rows_view(self, a: np.ndarray, tables: NttTables) -> np.ndarray:
        if tables.num_rows > 1 and a.shape[-2] != tables.num_rows:
            raise ParameterError(
                f"residue stack shape {a.shape} does not carry "
                f"{tables.num_rows} limb rows")
        return np.ascontiguousarray(a).reshape(-1, tables.degree)

    def _run_ntt(self, kernel_name: str, a: np.ndarray,
                 tables: NttTables) -> np.ndarray:
        pack = tables.extras(self.name, self._ntt_pack)
        rows = self._rows_view(a, tables)
        work = self._wrap(rows)
        if kernel_name == "k_ntt_forward":
            self._kernel(kernel_name)(
                work, pack["psi"], pack["psi_sh"], pack["q"])
        else:
            self._kernel(kernel_name)(
                work, pack["psi_inv"], pack["psi_inv_sh"], pack["q"],
                pack["n_inv"], pack["n_inv_sh"])
        result = self._unwrap(work).reshape(a.shape)
        # honour the mutate-and-return contract of the numpy cores: when
        # the kernel ran on a copy (non-contiguous input, object arrays)
        # the result must land back in the caller's array
        if not np.shares_memory(result, a):
            a[...] = result
        return a

    def ntt_forward(self, a: np.ndarray, tables: NttTables) -> np.ndarray:
        return self._run_ntt("k_ntt_forward", a, tables)

    def ntt_inverse(self, a: np.ndarray, tables: NttTables) -> np.ndarray:
        return self._run_ntt("k_ntt_inverse", a, tables)

    # -- fused rescale ----------------------------------------------------

    def rescale_delta(self, last_coeff: np.ndarray, q_last: int,
                      q_col: np.ndarray) -> np.ndarray:
        last = np.asarray(last_coeff, dtype=np.uint64)
        q_rows = np.ascontiguousarray(
            np.asarray(q_col, dtype=np.uint64).reshape(-1))
        lead = last.shape[:-1]
        n = last.shape[-1]
        k = q_rows.shape[0]
        last2d = np.ascontiguousarray(last).reshape(-1, n)
        corr = np.mod(np.uint64(q_last), q_rows)
        out = self._alloc((last2d.shape[0], k, n))
        self._kernel("k_rescale_delta")(
            self._wrap(last2d), int(q_last) // 2, self._wrap(q_rows),
            self._wrap(corr), out)
        return self._unwrap(out).reshape(lead + (k, n))

    # -- warmup -----------------------------------------------------------

    def warmup(self, degree: int = _WARMUP_DEGREE) -> None:
        """Exercise every kernel once at the shapes real callers use."""
        from repro.polymath.ntt import stacked_tables

        tables = stacked_tables(_WARMUP_DEGREE, _WARMUP_MODULI)
        rng = np.random.default_rng(0)
        q_col = tables.q.reshape(-1, 1)
        stack = (rng.integers(0, 193, size=(2, _WARMUP_DEGREE))
                 .astype(np.uint64) % q_col)
        self.add_mod(stack, stack, q_col)
        self.sub_mod(stack, stack, q_col)
        self.neg_mod(stack, q_col)
        self.mul_mod(stack, stack, q_col)
        self.mod_reduce(stack, q_col)
        work = stack.copy()
        self.ntt_forward(work, tables)
        self.ntt_inverse(work, tables)
        self.rescale_delta(stack[0], int(tables.moduli[-1]), q_col[:1])
