"""Numba CPU-JIT kernel backend.

Compiles the :mod:`repro.polymath.kernels.jitcore` kernels with
``@njit(parallel=True, nogil=True)``: the NTT runs as one fused machine-
code loop per residue row (``prange`` across rows) instead of
``log2(N)`` numpy passes, and the elementwise ops fuse the broadcast,
reduction and write-back into a single pass.

Because the arithmetic is exact 64-bit Barrett/Shoup (no float quotient
estimate), this backend's modulus ceiling is
:data:`repro.polymath.kernels.jitcore.JIT_MAX_MODULUS_BITS` (59) — past
the numpy backend's 50-bit floor.  Parameter sets stay within the
shared floor by default so every backend produces identical ciphertext
bytes; the headroom is opt-in for experiments.

Compilation happens lazily per kernel and is cached on disk by numba
(``cache=True``), so only the first process on a host pays the full
compile; call :func:`repro.polymath.kernels.warmup` at process start to
pay whatever remains before the first request.
"""

from __future__ import annotations

import threading

from repro.polymath.kernels import jitcore
from repro.polymath.kernels.jitbase import JitStyleBackend


class NumbaBackend(JitStyleBackend):
    name = "numba"
    jit = True

    @classmethod
    def available(cls) -> bool:
        return jitcore.HAVE_NUMBA

    @classmethod
    def unavailable_reason(cls) -> str:
        return "the numba package is not installed"

    def __init__(self):
        super().__init__()
        self._compiled: dict[str, object] = {}
        self._compile_lock = threading.Lock()

    def _kernel(self, name: str):
        fn = self._compiled.get(name)
        if fn is not None:
            return fn
        with self._compile_lock:
            fn = self._compiled.get(name)
            if fn is None:
                import numba

                fn = numba.njit(parallel=True, nogil=True, cache=True)(
                    getattr(jitcore, name))
                self._compiled[name] = fn
            return fn
