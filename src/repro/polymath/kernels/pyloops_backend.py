"""Pure-Python execution of the JIT kernel source (testing only).

Runs the *exact* functions the numba backend compiles — same masked
64-bit Barrett/Shoup arithmetic, same loop structure — as plain Python
over object arrays (arbitrary-precision ints, wrapped explicitly by the
kernels' ``& MASK64`` masks).  Orders of magnitude slower than numpy;
its sole purpose is differential coverage of the JIT arithmetic on
hosts where numba is not installed: ``test_kernels.py`` drives full
encrypt/eval/decrypt runs through this backend and asserts the
ciphertext bytes match numpy's bit for bit.

Never selected by ``auto``; reachable only by explicit request
(``--kernel pyloops`` / ``REPRO_KERNEL=pyloops``).
"""

from __future__ import annotations

import numpy as np

from repro.polymath.kernels import jitcore
from repro.polymath.kernels.jitbase import JitStyleBackend


class PyloopsBackend(JitStyleBackend):
    name = "pyloops"
    jit = False

    @classmethod
    def available(cls) -> bool:
        return True

    @classmethod
    def unavailable_reason(cls) -> str:
        return "always available"

    def _kernel(self, name: str):
        return getattr(jitcore, name)

    def _wrap(self, arr: np.ndarray) -> np.ndarray:
        if arr.dtype == object:
            return arr
        return arr.astype(object)

    def _alloc(self, shape) -> np.ndarray:
        return np.empty(shape, dtype=object)

    def _unwrap(self, arr: np.ndarray) -> np.ndarray:
        return arr.astype(np.uint64)
