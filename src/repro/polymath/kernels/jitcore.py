"""Kernel source shared by the numba (JIT) and pyloops (pure) backends.

Everything here is written in the *intersection* of nopython-numba and
plain Python semantics:

* Arithmetic that may exceed 64 bits is masked with ``& MASK64`` after
  every step.  Under numba the operands are ``uint64`` and wrap modulo
  2**64 anyway (the mask compiles to a no-op LLVM ``and``); under pure
  Python the operands are arbitrary-precision ints and the mask makes
  the wrap explicit — so the two executions are bit-identical.
* Helpers carry :func:`numba.extending.register_jitable`, which leaves
  them callable as ordinary Python functions *and* inlinable from
  ``@njit`` kernels.  Without numba the decorator degrades to identity.
* Loops use ``prange``; numba parallelises them, plain Python treats it
  as ``range`` (``numba.prange`` falls back to ``range`` outside JIT).

The multiplication kernels avoid the float-reciprocal quotient estimate
entirely: generic ``mul_mod`` is a SEAL-style base-2^64 Barrett
reduction of the full 128-bit product (built from 32-bit limb products)
against a per-modulus precomputed ``floor(2^128 / q)``, and the NTT
butterflies use Shoup multiplication against precomputed
``floor(w * 2^64 / q)`` twiddles.  Both are exact for moduli up to
:data:`JIT_MAX_MODULUS_BITS` bits — past the 50-bit float-trick ceiling
of the numpy backend.

Top-level ``k_*`` kernels take flat/2-D contiguous arrays plus small
per-row constant vectors; the backends own shape normalisation.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba.extending import register_jitable

    prange = numba.prange
    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the only branch on this host
    numba = None
    HAVE_NUMBA = False
    prange = range

    def register_jitable(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco


MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1

#: Modulus ceiling for the Barrett/Shoup arithmetic below.  Shoup
#: multiplication needs ``2q < 2^64``; the base-2^64 Barrett estimate is
#: within 2 of the true quotient for q below ~2^62.  59 bits keeps a
#: comfortable margin on both (and well past the 50-bit float-trick
#: floor shared with numpy).
JIT_MAX_MODULUS_BITS = 59


# -- 64x64 -> 128 building blocks ------------------------------------------

@register_jitable
def mul_hi(a, b):
    """High 64 bits of the 128-bit product ``a * b`` (32-bit limbs)."""
    al = a & MASK32
    ah = a >> 32
    bl = b & MASK32
    bh = b >> 32
    ll = al * bl
    lh = al * bh
    hl = ah * bl
    # carries out of the low word; every term < 2^32 so no wrap
    t = (ll >> 32) + (hl & MASK32) + (lh & MASK32)
    return (ah * bh + (hl >> 32) + (lh >> 32) + (t >> 32)) & MASK64


@register_jitable
def shoup_mul_mod(x, w, w_shoup, q):
    """``x * w mod q`` with ``w_shoup = floor(w * 2^64 / q)`` precomputed.

    Valid for any ``x < 2^64`` and ``q < 2^63``; the quotient estimate
    is off by at most one, fixed with a single conditional subtraction.
    """
    hi = mul_hi(x, w_shoup)
    r = ((x * w) & MASK64) - ((hi * q) & MASK64)
    r = r & MASK64
    if r >= q:
        r -= q
    return r


@register_jitable
def barrett_mul_mod(a, b, q, c_hi, c_lo):
    """``a * b mod q`` via base-2^64 Barrett reduction of the product.

    ``c_hi * 2^64 + c_lo = floor(2^128 / q)``.  Exact for operands in
    ``[0, q)`` with ``q`` up to :data:`JIT_MAX_MODULUS_BITS` bits; the
    truncated-estimate error is at most 2, corrected by the loop.
    """
    z_hi = mul_hi(a, b)
    z_lo = (a * b) & MASK64
    # round 1: z_lo * const_ratio.  Carry flags fold in via branches, not
    # int-typed ternaries: numba would promote uint64 + int64 to float64.
    carry = mul_hi(z_lo, c_lo)
    t2_hi = mul_hi(z_lo, c_hi)
    t2_lo = (z_lo * c_hi) & MASK64
    tmp1 = (t2_lo + carry) & MASK64
    tmp3 = t2_hi
    if tmp1 < carry:
        tmp3 = (t2_hi + 1) & MASK64
    # round 2: z_hi * const_ratio
    t4_hi = mul_hi(z_hi, c_lo)
    t4_lo = (z_hi * c_lo) & MASK64
    tmp1b = (tmp1 + t4_lo) & MASK64
    carry2 = t4_hi
    if tmp1b < t4_lo:
        carry2 = (t4_hi + 1) & MASK64
    # low word of the estimated quotient floor(z * const_ratio / 2^128)
    quot = ((z_hi * c_hi) + tmp3 + carry2) & MASK64
    r = (z_lo - ((quot * q) & MASK64)) & MASK64
    while r >= q:
        r -= q
    return r


# -- elementwise kernels (flat layout, modulus constant per row) ------------
#
# ``a``/``b``/``out`` are flat length-``rows*n`` arrays; element ``i``
# uses modulus ``q_rows[i // n]``.  A scalar modulus is the single-row
# case ``n == len(a)``.

def k_add_mod(a, b, q_rows, n, out):
    for i in prange(a.shape[0]):
        q = q_rows[i // n]
        s = (a[i] + b[i]) & MASK64
        out[i] = s - q if s >= q else s


def k_sub_mod(a, b, q_rows, n, out):
    for i in prange(a.shape[0]):
        q = q_rows[i // n]
        x = a[i]
        y = b[i]
        out[i] = x - y if x >= y else (x + q) - y


def k_neg_mod(a, q_rows, n, out):
    for i in prange(a.shape[0]):
        q = q_rows[i // n]
        x = a[i]
        out[i] = 0 if x == 0 else q - x


def k_mul_mod(a, b, q_rows, c_hi, c_lo, n, out):
    for i in prange(a.shape[0]):
        r = i // n
        out[i] = barrett_mul_mod(a[i], b[i], q_rows[r], c_hi[r], c_lo[r])


def k_mod_reduce(a, q_rows, n, out):
    for i in prange(a.shape[0]):
        out[i] = a[i] % q_rows[i // n]


# -- NTT kernels (rows transform independently; row r uses modulus r % B) ---

def k_ntt_forward(a, psi, psi_shoup, q_rows):
    """Fused Cooley–Tukey forward NTT over every row of ``a`` (R, N)."""
    rows, n = a.shape
    nb = q_rows.shape[0]
    for r in prange(rows):
        base = r % nb
        q = q_rows[base]
        t = n
        m = 1
        while m < n:
            t = t // 2
            for i in range(m):
                s = psi[base, m + i]
                s_sh = psi_shoup[base, m + i]
                j1 = 2 * i * t
                for j in range(j1, j1 + t):
                    u = a[r, j]
                    v = shoup_mul_mod(a[r, j + t], s, s_sh, q)
                    s1 = u + v
                    a[r, j] = s1 - q if s1 >= q else s1
                    a[r, j + t] = u - v if u >= v else (u + q) - v
            m = m * 2


def k_ntt_inverse(a, psi_inv, psi_inv_shoup, q_rows, n_inv, n_inv_shoup):
    """Fused Gentleman–Sande inverse NTT incl. the final N^-1 scaling."""
    rows, n = a.shape
    nb = q_rows.shape[0]
    for r in prange(rows):
        base = r % nb
        q = q_rows[base]
        t = 1
        m = n
        while m > 1:
            h = m // 2
            for i in range(h):
                s = psi_inv[base, h + i]
                s_sh = psi_inv_shoup[base, h + i]
                j1 = 2 * i * t
                for j in range(j1, j1 + t):
                    u = a[r, j]
                    v = a[r, j + t]
                    s1 = u + v
                    a[r, j] = s1 - q if s1 >= q else s1
                    d = u - v if u >= v else (u + q) - v
                    a[r, j + t] = shoup_mul_mod(d, s, s_sh, q)
            t = t * 2
            m = h
        ninv = n_inv[base]
        ninv_sh = n_inv_shoup[base]
        for j in range(n):
            a[r, j] = shoup_mul_mod(a[r, j], ninv, ninv_sh, q)


def k_rescale_delta(last, half, q_rows, corr, out):
    """Fused centred-reduce: ``out[p, k, :] = centred(last[p, :]) mod q_k``.

    ``last`` is ``(P, N)`` coefficient-form last residues, ``out`` is
    ``(P, K, N)``; ``corr[k] = q_last mod q_k`` precomputed.
    """
    p_count, n = last.shape
    k_count = q_rows.shape[0]
    for pk in prange(p_count * k_count):
        p = pk // k_count
        k = pk % k_count
        q = q_rows[k]
        c = corr[k]
        for j in range(n):
            x = last[p, j]
            v = x % q
            if x > half:
                v = v - c if v >= c else (v + q) - c
            out[p, k, j] = v


ELEMENTWISE_KERNELS = ("k_add_mod", "k_sub_mod", "k_neg_mod", "k_mul_mod",
                       "k_mod_reduce")
NTT_KERNELS = ("k_ntt_forward", "k_ntt_inverse", "k_rescale_delta")


# -- precomputation (pure Python big-int; memoised by the backends) ---------

def barrett_pack(moduli) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(q, c_hi, c_lo)`` uint64 vectors with ``floor(2^128/q)`` split."""
    q_rows = np.empty(len(moduli), dtype=np.uint64)
    c_hi = np.empty(len(moduli), dtype=np.uint64)
    c_lo = np.empty(len(moduli), dtype=np.uint64)
    for i, q in enumerate(moduli):
        q = int(q)
        if q.bit_length() > JIT_MAX_MODULUS_BITS:
            raise ValueError(
                f"modulus {q} exceeds the {JIT_MAX_MODULUS_BITS}-bit JIT "
                f"kernel ceiling")
        ratio = (1 << 128) // q
        q_rows[i] = q
        c_hi[i] = ratio >> 64
        c_lo[i] = ratio & MASK64
    return q_rows, c_hi, c_lo


def shoup_pack(values: np.ndarray, moduli) -> np.ndarray:
    """``floor(v * 2^64 / q)`` per element; ``values`` is ``(B, ...)``.

    Computed with exact big-int arithmetic through an object array (one
    vectorised pass, no Python-level loop); memoise per ``(N, moduli)``
    — this is table-build cost, not per-op cost.
    """
    obj = values.astype(object)
    out = np.empty_like(obj)
    for i, q in enumerate(moduli):
        out[i] = (obj[i] << 64) // int(q)
    return out.astype(np.uint64)
