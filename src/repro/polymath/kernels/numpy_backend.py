"""The default kernel backend: the repo's vectorised numpy code.

This backend *is* the reference: it delegates straight to the
float-reciprocal Barrett elementwise ops in
:mod:`repro.polymath.modmath` and the vectorised butterfly cores in
:mod:`repro.polymath.ntt` — the exact code every prior benchmark and
bit-identity test ran on.  Its per-modulus ceiling is the shared
50-bit floor (the float quotient estimate needs ``a*b/q < 2**52``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.polymath.kernels import KernelBackend, NttTables


def _broadcast_views(tables: NttTables) -> dict:
    """Numpy-shaped views of an :class:`NttTables`.

    ``B == 1`` uses the scalar-modulus layout (tables shaped ``(N,)``,
    scalar q) accepted for any ``(..., N)`` input; ``B > 1`` uses the
    stacked layout (``(B, N)`` tables, ``(B, 1, 1)`` modulus) for
    ``(..., B, N)`` inputs — both exactly as the pre-backend code did.
    """
    b = tables.num_rows
    if b == 1:
        q = tables.q[0]
        return {
            "psi": tables.psi_rev[0],
            "psi_inv": tables.psi_inv_rev[0],
            "q": q,
            "n_inv": tables.n_inv[0],
            "q_row": q,
        }
    return {
        "psi": tables.psi_rev,
        "psi_inv": tables.psi_inv_rev,
        "q": tables.q.reshape(b, 1, 1),
        "n_inv": tables.n_inv.reshape(b, 1),
        "q_row": tables.q.reshape(b, 1),
    }


class NumpyBackend(KernelBackend):
    name = "numpy"
    jit = False

    @classmethod
    def available(cls) -> bool:
        return True

    @classmethod
    def unavailable_reason(cls) -> str:
        return "always available"

    @property
    def max_modulus_bits(self) -> int:
        from repro.polymath import modmath

        return modmath.MAX_MODULUS_BITS

    # -- elementwise ------------------------------------------------------

    def add_mod(self, a, b, q):
        from repro.polymath import modmath

        return modmath.add_mod_numpy(a, b, q)

    def sub_mod(self, a, b, q):
        from repro.polymath import modmath

        return modmath.sub_mod_numpy(a, b, q)

    def neg_mod(self, a, q):
        from repro.polymath import modmath

        return modmath.neg_mod_numpy(a, q)

    def mul_mod(self, a, b, q):
        from repro.polymath import modmath

        return modmath.mul_mod_numpy(a, b, q)

    def mod_reduce(self, a, q):
        return np.mod(np.asarray(a, dtype=np.uint64),
                      np.asarray(q, dtype=np.uint64))

    # -- NTT --------------------------------------------------------------

    def _check_tables(self, a: np.ndarray, tables: NttTables) -> None:
        if tables.max_bits > self.max_modulus_bits:
            raise ParameterError(
                f"{tables.max_bits}-bit modulus exceeds the numpy "
                f"backend's {self.max_modulus_bits}-bit ceiling (use a "
                f"JIT kernel backend)")
        if tables.num_rows > 1 and a.shape[-2] != tables.num_rows:
            raise ParameterError(
                f"residue stack shape {a.shape} does not carry "
                f"{tables.num_rows} limb rows")

    def ntt_forward(self, a: np.ndarray, tables: NttTables) -> np.ndarray:
        from repro.polymath.ntt import ntt_forward_core

        self._check_tables(a, tables)
        views = tables.extras(self.name, _broadcast_views)
        return ntt_forward_core(a, views["psi"], views["q"])

    def ntt_inverse(self, a: np.ndarray, tables: NttTables) -> np.ndarray:
        from repro.polymath.ntt import ntt_inverse_core

        self._check_tables(a, tables)
        views = tables.extras(self.name, _broadcast_views)
        return ntt_inverse_core(a, views["psi_inv"], views["q"],
                                views["n_inv"], views["q_row"])
