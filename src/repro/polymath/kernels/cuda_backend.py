"""Experimental CuPy/CUDA kernel backend.

Mirrors the numpy backend's float-reciprocal Barrett arithmetic on the
GPU: elementwise ops and the blocked butterfly passes run as CuPy
vector kernels over device arrays, with twiddle tables resident on the
device (attached to the shared :class:`NttTables` via ``extras``).
Inputs arrive as host numpy arrays and results return as host arrays,
so the backend is a drop-in for the same call sites — the transfer cost
makes it worthwhile only for large degrees/batches.

Availability requires both the :mod:`cupy` package *and* a visible CUDA
device; anything else (no package, no driver, zero devices) makes
``available()`` False so ``--kernel auto`` skips it cleanly and the
test suite marks its cases as skipped rather than failed.  The modulus
ceiling matches numpy's 50-bit floor (same float quotient estimate).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.polymath.kernels import KernelBackend, NttTables

_probe_detail = "not probed"


def _cupy():
    import cupy

    return cupy


class CudaBackend(KernelBackend):
    name = "cuda"
    jit = True  # first use pays CUDA kernel compilation
    max_modulus_bits = 50

    @classmethod
    def available(cls) -> bool:
        global _probe_detail
        try:
            cp = _cupy()
            count = cp.cuda.runtime.getDeviceCount()
        except ImportError:
            _probe_detail = "the cupy package is not installed"
            return False
        except Exception as exc:  # driver/runtime errors
            _probe_detail = f"CUDA runtime unavailable ({exc})"
            return False
        if count < 1:
            _probe_detail = "no CUDA device visible"
            return False
        return True

    @classmethod
    def unavailable_reason(cls) -> str:
        return _probe_detail

    # -- device-side modular primitives -----------------------------------

    @staticmethod
    def _d_add(cp, a, b, q):
        s = a + b
        return cp.where(s >= q, s - q, s)

    @staticmethod
    def _d_sub(cp, a, b, q):
        return cp.where(a >= b, a - b, a + q - b)

    @staticmethod
    def _d_mul(cp, a, b, q):
        quot = cp.floor(
            a.astype(cp.float64) * b.astype(cp.float64)
            / q.astype(cp.float64)).astype(cp.uint64)
        r = a * b - quot * q  # wraps mod 2**64 exactly like numpy
        two63 = cp.uint64(1 << 63)
        r = cp.where(r >= two63, r + q, r)
        return cp.where(r >= q, r - q, r)

    # -- elementwise (host in, host out) ----------------------------------

    def _ew(self, fn, *arrays):
        cp = _cupy()
        dev = [cp.asarray(np.asarray(x, dtype=np.uint64)) for x in arrays]
        return cp.asnumpy(fn(cp, *dev))

    def add_mod(self, a, b, q):
        return self._ew(lambda cp, x, y, qq: self._d_add(cp, x, y, qq),
                        a, b, q)

    def sub_mod(self, a, b, q):
        return self._ew(lambda cp, x, y, qq: self._d_sub(cp, x, y, qq),
                        a, b, q)

    def neg_mod(self, a, q):
        return self._ew(
            lambda cp, x, qq: cp.where(x == 0, x, qq - x), a, q)

    def mul_mod(self, a, b, q):
        return self._ew(lambda cp, x, y, qq: self._d_mul(cp, x, y, qq),
                        a, b, q)

    def mod_reduce(self, a, q):
        return self._ew(lambda cp, x, qq: x % qq, a, q)

    # -- NTT ---------------------------------------------------------------

    def _device_tables(self, tables: NttTables) -> dict:
        cp = _cupy()
        b = tables.num_rows
        if b == 1:
            return {
                "psi": cp.asarray(tables.psi_rev[0]),
                "psi_inv": cp.asarray(tables.psi_inv_rev[0]),
                "q": cp.uint64(tables.moduli[0]),
                "n_inv": cp.uint64(tables.n_inv[0]),
                "q_row": cp.uint64(tables.moduli[0]),
            }
        return {
            "psi": cp.asarray(tables.psi_rev),
            "psi_inv": cp.asarray(tables.psi_inv_rev),
            "q": cp.asarray(tables.q.reshape(b, 1, 1)),
            "n_inv": cp.asarray(tables.n_inv.reshape(b, 1)),
            "q_row": cp.asarray(tables.q.reshape(b, 1)),
        }

    def _check_tables(self, a: np.ndarray, tables: NttTables) -> None:
        if tables.max_bits > self.max_modulus_bits:
            raise ParameterError(
                f"{tables.max_bits}-bit modulus exceeds the cuda backend's "
                f"{self.max_modulus_bits}-bit ceiling")
        if tables.num_rows > 1 and a.shape[-2] != tables.num_rows:
            raise ParameterError(
                f"residue stack shape {a.shape} does not carry "
                f"{tables.num_rows} limb rows")

    def ntt_forward(self, a: np.ndarray, tables: NttTables) -> np.ndarray:
        cp = _cupy()
        self._check_tables(a, tables)
        dt = tables.extras(self.name, self._device_tables)
        work = cp.asarray(a)
        n = a.shape[-1]
        lead = work.shape[:-1]
        psi, q = dt["psi"], dt["q"]
        t = n
        m = 1
        while m < n:
            t //= 2
            s = psi[..., m: 2 * m]
            blocks = work.reshape(*lead, m, 2, t)
            u = blocks[..., 0, :].copy()
            v = self._d_mul(cp, blocks[..., 1, :], s[..., :, None], q)
            blocks[..., 0, :] = self._d_add(cp, u, v, q)
            blocks[..., 1, :] = self._d_sub(cp, u, v, q)
            m *= 2
        a[...] = cp.asnumpy(work)
        return a

    def ntt_inverse(self, a: np.ndarray, tables: NttTables) -> np.ndarray:
        cp = _cupy()
        self._check_tables(a, tables)
        dt = tables.extras(self.name, self._device_tables)
        work = cp.asarray(a)
        n = a.shape[-1]
        lead = work.shape[:-1]
        psi_inv, q = dt["psi_inv"], dt["q"]
        t = 1
        m = n
        while m > 1:
            h = m // 2
            s = psi_inv[..., h: 2 * h]
            blocks = work.reshape(*lead, h, 2, t)
            u = blocks[..., 0, :].copy()
            v = blocks[..., 1, :].copy()
            blocks[..., 0, :] = self._d_add(cp, u, v, q)
            diff = self._d_sub(cp, u, v, q)
            blocks[..., 1, :] = self._d_mul(cp, diff, s[..., :, None], q)
            t *= 2
            m = h
        scaled = self._d_mul(cp, work, dt["n_inv"], dt["q_row"])
        a[...] = cp.asnumpy(scaled)
        return a

    # -- lifecycle ---------------------------------------------------------

    def warmup(self, degree: int = 32) -> None:
        from repro.polymath.kernels.jitbase import JitStyleBackend

        JitStyleBackend.warmup(self, degree)
