"""Automatic security-parameter selection (paper §4.4, RQ3 / Table 10).

Given the *requirements* extracted by the compiler from a lowered program —
maximum multiplicative depth per bootstrap region, required SIMD width,
requested input scale Δ and output precision Q0 — the selector picks:

* the modulus chain bit layout ``log2(Q) = log2(Q0) + depth * log2(Δ)``
  plus special primes for key switching,
* ``N1``: the smallest ring degree whose HE-standard budget admits
  ``log2(QP)`` at the requested security level,
* ``N2``: twice the maximum SIMD vector width (CKKS packs N/2 slots),
* ``N = max(N1, N2)`` (paper §4.4).

The selection is *symbolic*: it reasons about the paper's 56/60-bit primes
even though the executable numpy arithmetic caps primes at 50 bits.  Use
:meth:`SelectedParameters.realize` to obtain a runnable
:class:`~repro.ckks.params.CkksParameters` with proportionally scaled-down
prime widths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.params.security import max_log_qp_for_degree, min_degree_for_log_qp
from repro.polymath.modmath import MAX_MODULUS_BITS
from repro.utils.bits import next_power_of_two


@dataclass(frozen=True)
class SelectedParameters:
    """Result of automatic parameter selection."""

    log_n: int
    log_q0: int
    log_scale: int
    depth: int
    num_special_primes: int
    security_bits: int
    simd_width: int

    @property
    def degree(self) -> int:
        return 1 << self.log_n

    @property
    def log_q(self) -> int:
        return self.log_q0 + self.depth * self.log_scale

    @property
    def log_qp(self) -> int:
        return self.log_q + self.num_special_primes * self.log_q0

    def table10_row(self) -> dict[str, int]:
        """The three columns Table 10 reports."""
        return {
            "log2(N)": self.log_n,
            "log2(Q0)": self.log_q0,
            "log2(Delta)": self.log_scale,
        }

    def realize(self, max_prime_bits: int = MAX_MODULUS_BITS):
        """Build an executable :class:`CkksParameters`.

        Prime widths above the numpy arithmetic cap are scaled down
        proportionally (preserving the Q0/Δ ratio); the ring degree is also
        reduced to keep runtimes laptop-scale, since the *symbolic*
        selection already records the paper-fidelity values.
        """
        from repro.ckks.params import CkksParameters

        shrink = min(1.0, (max_prime_bits - 2) / self.log_q0)
        scale_bits = max(20, int(self.log_scale * shrink))
        first_bits = max(scale_bits, min(max_prime_bits, int(self.log_q0 * shrink)))
        degree = min(self.degree, 1 << 13)
        return CkksParameters(
            poly_degree=degree,
            scale_bits=scale_bits,
            first_prime_bits=first_bits,
            num_levels=self.depth,
            num_special_primes=self.num_special_primes,
            security_bits=0,
        )


class ParameterSelector:
    """Implements the N/Q selection procedure of §4.4."""

    def __init__(self, security_bits: int = 128):
        self.security_bits = security_bits

    def select(
        self,
        depth: int,
        simd_width: int,
        log_scale: int = 56,
        log_q0: int = 60,
        num_special_primes: int = 1,
    ) -> SelectedParameters:
        """Choose parameters for a program of the given requirements.

        Args:
            depth: maximum multiplicative depth between bootstrap points
                (each level consumes one Δ-sized prime).
            simd_width: widest cleartext vector the VECTOR IR produced.
            log_scale: requested log2 of the input scale Δ.
            log_q0: requested log2 of the output-precision prime Q0.
            num_special_primes: key-switching special primes.
        """
        if depth < 0:
            raise ParameterError("depth must be non-negative")
        if simd_width < 1:
            raise ParameterError("simd_width must be positive")
        if log_scale > log_q0:
            raise ParameterError(
                f"input scale 2^{log_scale} exceeds output budget 2^{log_q0}"
            )
        log_q = log_q0 + depth * log_scale
        log_qp = log_q + num_special_primes * log_q0
        n1 = min_degree_for_log_qp(log_qp, self.security_bits)
        n2 = 2 * next_power_of_two(simd_width)
        degree = max(n1, n2)
        # Selecting N larger than N1 never hurts security (§4.4): a larger
        # degree strictly increases the admissible budget.
        assert max_log_qp_for_degree(degree, self.security_bits) >= log_qp
        return SelectedParameters(
            log_n=degree.bit_length() - 1,
            log_q0=log_q0,
            log_scale=log_scale,
            depth=depth,
            num_special_primes=num_special_primes,
            security_bits=self.security_bits,
            simd_width=simd_width,
        )
