"""Automatic security-parameter selection (paper §4.4, Table 10)."""

from repro.params.security import max_log_qp_for_degree, min_degree_for_log_qp
from repro.params.selector import ParameterSelector, SelectedParameters

__all__ = [
    "max_log_qp_for_degree",
    "min_degree_for_log_qp",
    "ParameterSelector",
    "SelectedParameters",
]
