"""Security tables from the Homomorphic Encryption Standard.

Maps ring degree N to the maximum permitted ``log2(Q*P)`` for a given
security level with ternary secrets (Albrecht et al., "Homomorphic
Encryption Standard", 2019 — the same reference [7] the paper uses for
automatic parameter selection).
"""

from __future__ import annotations

from repro.errors import SecurityError

# log2(N) -> {security_bits: max log2(QP)} (ternary secret, classical).
_HE_STANDARD_TABLE: dict[int, dict[int, int]] = {
    10: {128: 27, 192: 19, 256: 14},
    11: {128: 54, 192: 37, 256: 29},
    12: {128: 109, 192: 75, 256: 58},
    13: {128: 218, 192: 152, 256: 118},
    14: {128: 438, 192: 305, 256: 237},
    15: {128: 881, 192: 611, 256: 476},
    16: {128: 1772, 192: 1229, 256: 959},
    17: {128: 3544, 192: 2458, 256: 1918},
}


def max_log_qp_for_degree(degree: int, security_bits: int = 128) -> int:
    """Largest log2(QP) admissible at ``security_bits`` for ring degree N."""
    log_n = degree.bit_length() - 1
    if log_n not in _HE_STANDARD_TABLE:
        raise SecurityError(f"no security estimate for N=2^{log_n}")
    table = _HE_STANDARD_TABLE[log_n]
    if security_bits not in table:
        raise SecurityError(
            f"unsupported security level {security_bits} "
            f"(choose from {sorted(table)})"
        )
    return table[security_bits]


def min_degree_for_log_qp(log_qp: int, security_bits: int = 128) -> int:
    """Smallest power-of-two N whose budget covers ``log_qp`` bits of QP."""
    for log_n in sorted(_HE_STANDARD_TABLE):
        budget = _HE_STANDARD_TABLE[log_n].get(security_bits)
        if budget is not None and budget >= log_qp:
            return 1 << log_n
    raise SecurityError(
        f"log2(QP)={log_qp} cannot reach {security_bits}-bit security "
        f"with any tabulated ring degree"
    )
