"""Homomorphic linear transforms (matrix-vector products on slot vectors).

Implements the diagonal (Halevi–Shoup) method and its baby-step/giant-step
(BSGS) refinement: for an n×n matrix M and an encrypted slot vector z,

    M·z = sum_d  diag_d(M) ⊙ rot(z, d)                      (diagonal)
        = sum_i rot( sum_j diag'_{i*g+j}(M) ⊙ rot(z, j), i*g )   (BSGS)

where ``diag_d(M)[k] = M[k, (k+d) mod n]`` and the BSGS inner diagonals
are pre-rotated by ``-i*g``.  BSGS needs only ``O(sqrt(n))`` rotation keys
— the same trick the compiler's VECTOR-IR lowering uses for GEMV.

Used by bootstrapping (CoeffToSlot / SlotToCoeff are dense DFT-like
matrices) and available to tests as a reference for the compiler output.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ckks.cipher import Ciphertext
from repro.ckks.evaluator import CkksEvaluator
from repro.errors import ParameterError


class LinearTransform:
    """A plaintext n×n complex matrix applicable to encrypted slot vectors."""

    def __init__(self, matrix: np.ndarray, use_bsgs: bool = True):
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ParameterError(f"matrix must be square, got {matrix.shape}")
        self.n = matrix.shape[0]
        self.matrix = matrix
        self.use_bsgs = use_bsgs
        self.giant = int(math.isqrt(self.n))
        while self.n % self.giant:
            self.giant -= 1
        self.baby = self.n // self.giant

    def diagonal(self, d: int) -> np.ndarray:
        idx = np.arange(self.n)
        return self.matrix[idx, (idx + d) % self.n]

    def required_rotations(self) -> list[int]:
        """Rotation steps the transform needs keys for."""
        if not self.use_bsgs:
            return [d for d in range(1, self.n)]
        steps = set()
        for j in range(1, self.giant):
            steps.add(j)
        for i in range(1, self.baby):
            steps.add(i * self.giant)
        return sorted(steps)

    def apply(self, ev: CkksEvaluator, ct: Ciphertext) -> Ciphertext:
        """Compute M · slots(ct); consumes exactly one level."""
        if self.n != ev.params.num_slots:
            raise ParameterError(
                f"matrix is {self.n}x{self.n} but the ring has "
                f"{ev.params.num_slots} slots"
            )
        if self.use_bsgs:
            out = self._apply_bsgs(ev, ct)
        else:
            out = self._apply_diagonal(ev, ct)
        return ev.rescale(out)

    def _encode_diag(self, ev: CkksEvaluator, values: np.ndarray,
                     ct: Ciphertext):
        return ev.encode(values, scale=float(ev.params.scale), level=ct.level)

    def _apply_diagonal(self, ev: CkksEvaluator, ct: Ciphertext) -> Ciphertext:
        acc = None
        for d in range(self.n):
            diag = self.diagonal(d)
            if not np.any(diag):
                continue
            rotated = ev.rotate(ct, d)
            term = ev.multiply_plain(rotated, self._encode_diag(ev, diag, ct))
            acc = term if acc is None else ev.add(acc, term)
        if acc is None:
            raise ParameterError("zero matrix")
        return acc

    def _apply_bsgs(self, ev: CkksEvaluator, ct: Ciphertext) -> Ciphertext:
        g, b = self.giant, self.baby
        baby_rots = {0: ct}
        for j in range(1, g):
            baby_rots[j] = ev.rotate(ct, j)
        acc = None
        for i in range(b):
            inner = None
            for j in range(g):
                d = i * g + j
                diag = self.diagonal(d)
                if not np.any(diag):
                    continue
                # pre-rotate the diagonal so the outer rotation lines it up
                shifted = np.roll(diag, i * g)
                term = ev.multiply_plain(
                    baby_rots[j], self._encode_diag(ev, shifted, ct)
                )
                inner = term if inner is None else ev.add(inner, term)
            if inner is None:
                continue
            if i:
                inner = ev.rotate(inner, i * g)
            acc = inner if acc is None else ev.add(acc, inner)
        if acc is None:
            raise ParameterError("zero matrix")
        return acc
