"""Homomorphic linear transforms (matrix-vector products on slot vectors).

Implements the diagonal (Halevi–Shoup) method and its baby-step/giant-step
(BSGS) refinement: for an n×n matrix M and an encrypted slot vector z,

    M·z = sum_d  diag_d(M) ⊙ rot(z, d)                      (diagonal)
        = sum_i rot( sum_j diag'_{i*g+j}(M) ⊙ rot(z, j), i*g )   (BSGS)

where ``diag_d(M)[k] = M[k, (k+d) mod n]`` and the BSGS inner diagonals
are pre-rotated by ``-i*g``.  BSGS needs only ``O(sqrt(n))`` rotation keys
— the same trick the compiler's VECTOR-IR lowering uses for GEMV.

Two hot-path optimisations (see docs/INTERNALS.md "Evaluator hot paths"):

* all baby-step rotations of the input go through
  :meth:`CkksEvaluator.rotate_hoisted`, sharing one key-switch
  decomposition (and :func:`apply_hoisted_batch` shares those baby steps
  across *several* transforms of the same ciphertext — bootstrapping's
  CoeffToSlot halves);
* encoded diagonal plaintexts are memoised per ``(evaluator, level,
  diagonal, pre-rotation)``, so the steady state of repeated inference
  (``repro.serve``) stops re-encoding constants.

With hoisting, baby steps are much cheaper than giant steps, so the
optimal split shifts baby-heavy; pass ``giant`` explicitly to exploit
that (the default stays at the classic ``sqrt(n)`` balance).

Used by bootstrapping (CoeffToSlot / SlotToCoeff are dense DFT-like
matrices) and available to tests as a reference for the compiler output.
"""

from __future__ import annotations

import math
import threading
import warnings
import weakref

import numpy as np

from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.evaluator import CkksEvaluator
from repro.errors import ParameterError
from repro.polymath import modmath
from repro.polymath.poly import rotation_galois_element
from repro.polymath.rns import RnsPoly

#: Modular products are < 2^MAX_MODULUS_BITS, so this many of them sum in
#: raw uint64 without wrapping; one np.mod then folds the batch.
_SAFE_ACC_TERMS = (1 << 64) // (1 << modmath.MAX_MODULUS_BITS) - 1

#: evaluators already warned about composing missing rotation keys; one
#: warning per evaluator is signal, one per rotation is noise
_warned_evaluators: "weakref.WeakSet[CkksEvaluator]" = weakref.WeakSet()
_warned_lock = threading.Lock()


def _warn_missing_rotation_keys(ev: CkksEvaluator, steps, where: str) -> None:
    """Warn (once per evaluator) when ``steps`` lack exact rotation keys.

    A tuned BSGS split changes the step set a transform needs; keys are
    normally re-derived after tuning (the driver re-runs rotation-key
    analysis), but an evaluator built from a stale key blob silently
    falls back to composing each missing step from power-of-two keys —
    one extra key switch per set bit.  Surfacing that here turns a
    mystery slowdown into an actionable warning.
    """
    with _warned_lock:
        if ev in _warned_evaluators:
            return
    half = ev.params.poly_degree // 2
    missing = sorted({
        s % half for s in steps
        if s % half and rotation_galois_element(s % half,
                                                ev.params.poly_degree)
        not in ev.keys.rotations
    })
    if not missing:
        return
    with _warned_lock:
        if ev in _warned_evaluators:
            return
        _warned_evaluators.add(ev)
    shown = ", ".join(map(str, missing[:8]))
    if len(missing) > 8:
        shown += ", ..."
    warnings.warn(
        f"{where} needs rotation keys for {len(missing)} step(s) "
        f"[{shown}] that the evaluator does not hold; each will be "
        f"composed from power-of-two keys (slower). Re-run rotation-key "
        f"analysis after changing BSGS splits.",
        RuntimeWarning,
        stacklevel=3,
    )


def _accumulate_products(ct_stack: np.ndarray, pt_stack: np.ndarray,
                         q_col: np.ndarray) -> np.ndarray:
    """``sum_m ct_stack[m] * pt_stack[m] mod q`` over a ``(M, limbs, N)`` stack.

    The modular products are summed in plain uint64 (chunked far below the
    wrap-around bound) with a single ``np.mod`` per chunk — bit-identical
    to a chain of ``add_mod`` calls, without the per-term Python loop.
    """
    prods = modmath.mul_mod(ct_stack, pt_stack, q_col[None, :, :])
    acc = None
    for start in range(0, prods.shape[0], _SAFE_ACC_TERMS):
        part = modmath.mod_reduce(
            np.add.reduce(prods[start : start + _SAFE_ACC_TERMS], axis=0),
            q_col,
        )
        acc = part if acc is None else modmath.add_mod(acc, part, q_col)
    return acc


class LinearTransform:
    """A plaintext n×n complex matrix applicable to encrypted slot vectors."""

    def __init__(self, matrix: np.ndarray, use_bsgs: bool = True,
                 giant: int | None = None):
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ParameterError(f"matrix must be square, got {matrix.shape}")
        self.n = matrix.shape[0]
        self.matrix = matrix
        self.use_bsgs = use_bsgs
        if giant is None:
            giant = int(math.isqrt(self.n))
            while self.n % giant:
                giant -= 1
        elif not 1 <= giant <= self.n or self.n % giant:
            raise ParameterError(
                f"giant step {giant} must divide the dimension {self.n}"
            )
        self.giant = giant
        self.baby = self.n // self.giant
        # encoded-diagonal memo: evaluator -> {(level, d, shift): Plaintext}
        self._plain_cache: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
        self._nonzero: dict[int, bool] = {}
        # guards first-miss population of both memos: the parallel
        # executor applies one transform from several threads (e.g.
        # bootstrap CoeffToSlot halves running concurrently)
        self._cache_lock = threading.Lock()

    def diagonal(self, d: int) -> np.ndarray:
        idx = np.arange(self.n)
        return self.matrix[idx, (idx + d) % self.n]

    def _diag_nonzero(self, d: int) -> bool:
        hit = self._nonzero.get(d)
        if hit is None:
            # compute outside the lock (pure, idempotent), publish under it
            hit = bool(np.any(self.diagonal(d)))
            with self._cache_lock:
                self._nonzero[d] = hit
        return hit

    def required_rotations(self) -> list[int]:
        """Rotation steps the transform needs keys for."""
        if not self.use_bsgs:
            return [d for d in range(1, self.n)]
        steps = set()
        for j in range(1, self.giant):
            steps.add(j)
        for i in range(1, self.baby):
            steps.add(i * self.giant)
        return sorted(steps)

    def apply(self, ev: CkksEvaluator, ct: Ciphertext,
              hoisted: bool = True) -> Ciphertext:
        """Compute M · slots(ct); consumes exactly one level.

        ``hoisted=False`` forces the per-rotation baseline (every baby
        step pays its own key-switch decomposition) — kept for
        benchmarking and bit-exactness tests; both paths produce identical
        ciphertexts.
        """
        if self.n != ev.params.num_slots:
            raise ParameterError(
                f"matrix is {self.n}x{self.n} but the ring has "
                f"{ev.params.num_slots} slots"
            )
        _warn_missing_rotation_keys(
            ev, self.required_rotations(),
            f"{self.n}x{self.n} transform (giant={self.giant})")
        if self.use_bsgs:
            out = self._apply_bsgs(ev, ct, self._baby_rotations(ev, ct, hoisted))
        else:
            out = self._apply_diagonal(ev, ct, hoisted)
        return ev.rescale(out)

    def _encode_diag(self, ev: CkksEvaluator, ct: Ciphertext, d: int,
                     shift: int) -> Plaintext:
        """Encoded (optionally pre-rotated) diagonal, memoised per level.

        First-miss encodes run outside the lock (encoding is pure and two
        racing threads produce identical plaintexts); insertion is
        double-checked under the lock so exactly one entry is published.
        """
        with self._cache_lock:
            per_ev = self._plain_cache.setdefault(ev, {})
        key = (ct.level, d, shift)
        plain = per_ev.get(key)
        if plain is None:
            diag = self.diagonal(d)
            if shift:
                diag = np.roll(diag, shift)
            plain = ev.encode(diag, scale=float(ev.params.scale), level=ct.level)
            with self._cache_lock:
                plain = per_ev.setdefault(key, plain)
        return plain

    def _apply_diagonal(self, ev: CkksEvaluator, ct: Ciphertext,
                        hoisted: bool) -> Ciphertext:
        live = [d for d in range(self.n) if self._diag_nonzero(d)]
        if not live:
            raise ParameterError("zero matrix")
        if hoisted:
            rotated = ev.rotate_hoisted(ct, [d for d in live if d])
            rotated[0] = ct
        else:
            rotated = {d: (ev.rotate(ct, d) if d else ct) for d in live}
        acc = None
        for d in live:
            term = ev.multiply_plain(rotated[d], self._encode_diag(ev, ct, d, 0))
            acc = term if acc is None else ev.add(acc, term)
        return acc

    def _baby_rotations(self, ev: CkksEvaluator, ct: Ciphertext,
                        hoisted: bool) -> dict[int, Ciphertext]:
        """All baby-step rotations of the input, hoisted or per-rotation."""
        steps = list(range(1, self.giant))
        if hoisted:
            rots = ev.rotate_hoisted(ct, steps)
        else:
            rots = {j: ev.rotate(ct, j) for j in steps}
        rots[0] = ct
        return rots

    def _apply_bsgs(self, ev: CkksEvaluator, ct: Ciphertext,
                    baby_rots: dict[int, Ciphertext]) -> Ciphertext:
        g, b = self.giant, self.baby
        basis = ct.basis
        q_col = basis.moduli_col
        acc = None
        for i in range(b):
            live = [j for j in range(g) if self._diag_nonzero(i * g + j)]
            if not live:
                continue
            # pre-rotate the diagonals so the outer rotation lines them up,
            # then fold sum_j diag ⊙ rot(ct, j) in one stacked pass per part
            pt_stack = np.stack(
                [
                    self._encode_diag(ev, ct, i * g + j, i * g).poly.residues
                    for j in live
                ]
            )
            parts = [
                RnsPoly(
                    basis,
                    _accumulate_products(
                        np.stack(
                            [baby_rots[j].parts[k].residues for j in live]
                        ),
                        pt_stack,
                        q_col,
                    ),
                    True,
                )
                for k in range(2)
            ]
            inner = Ciphertext(
                parts, ct.scale * float(ev.params.scale), ct.slots_in_use
            )
            if i:
                inner = ev.rotate(inner, i * g)
            acc = inner if acc is None else ev.add(acc, inner)
        if acc is None:
            raise ParameterError("zero matrix")
        return acc


def apply_hoisted_batch(
    ev: CkksEvaluator, ct: Ciphertext, transforms: list[LinearTransform]
) -> list[Ciphertext]:
    """Apply several BSGS transforms to *one* ciphertext, sharing baby steps.

    Bootstrapping applies both CoeffToSlot halves to the same ModRaised
    ciphertext; the union of their baby-step rotations is hoisted behind a
    single key-switch decomposition, then each transform consumes the
    shared rotation table.  Results are identical to calling
    ``lt.apply(ev, ct)`` per transform.
    """
    for lt in transforms:
        if lt.n != ev.params.num_slots:
            raise ParameterError(
                f"matrix is {lt.n}x{lt.n} but the ring has "
                f"{ev.params.num_slots} slots"
            )
        if not lt.use_bsgs:
            raise ParameterError("shared hoisting requires BSGS transforms")
    _warn_missing_rotation_keys(
        ev, {s for lt in transforms for s in lt.required_rotations()},
        f"hoisted batch of {len(transforms)} transforms "
        f"(giants={[lt.giant for lt in transforms]})")
    steps = sorted({j for lt in transforms for j in range(1, lt.giant)})
    shared = ev.rotate_hoisted(ct, steps)
    shared[0] = ct
    return [ev.rescale(lt._apply_bsgs(ev, ct, shared)) for lt in transforms]
