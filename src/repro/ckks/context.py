"""CkksContext: one-stop object bundling parameters, keys and evaluator.

This is the Python analogue of creating an ACEfhe context in generated
code: it owns the RNS bases, generates exactly the keys it is asked for
(the compiler's key-analysis pass decides which — paper §4.4), and exposes
encoder/encryptor/evaluator functionality.
"""

from __future__ import annotations

import numpy as np

from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.keys import KeyChain, KeyGenerator
from repro.ckks.params import CkksParameters


class CkksContext:
    """Keys + evaluator for one parameter set.

    Args:
        params: the RNS-CKKS parameter set.
        rotation_steps: slot-rotation steps to generate keys for.  ``None``
            (the default) generates the power-of-two key set an expert
            implementation would; the ANT-ACE compiler instead passes the
            exact set its key-analysis pass derived.
        need_relin / need_conjugation: skip generating unused keys.
        seed: RNG seed for reproducible keygen/encryption.
    """

    def __init__(
        self,
        params: CkksParameters,
        rotation_steps: list[int] | None = None,
        need_relin: bool = True,
        need_conjugation: bool = False,
        seed: int | None = None,
    ):
        self.params = params
        self.rng = np.random.default_rng(seed)
        cipher_basis, key_basis = params.make_bases()
        keygen = KeyGenerator(
            cipher_basis,
            key_basis,
            self.rng,
            params.error_std,
            params.secret_hamming_weight,
        )
        secret = keygen.gen_secret_key()
        public = keygen.gen_public_key(secret)
        if rotation_steps is None:
            rotation_steps = self._power_of_two_steps()
        rotations = keygen.gen_rotation_keys(secret, rotation_steps)
        self.keys = KeyChain(
            secret=secret,
            public=public,
            relin=keygen.gen_relin_key(secret) if need_relin else None,
            rotations=rotations,
            conjugation=(
                keygen.gen_conjugation_key(secret) if need_conjugation else None
            ),
        )
        self._keygen = keygen
        self.evaluator = CkksEvaluator(params, self.keys, self.rng)
        self.encoder = self.evaluator.encoder

    @classmethod
    def from_keychain(cls, params: CkksParameters, keys: KeyChain,
                      seed: int | None = None) -> "CkksContext":
        """A context around an existing key chain — no key generation.

        This is how a model shard loads serialized public/evaluation keys
        (:func:`repro.ckks.serialize.deserialize_eval_keys`): the chain
        typically has ``secret=None``, so the context can encrypt and
        evaluate but any decryption attempt raises a typed
        :class:`repro.errors.KeyError_`.  Key *minting* is impossible too
        (:meth:`add_rotation_keys` raises): an evaluator that was shipped
        keys can never widen its own key set.
        """
        self = cls.__new__(cls)
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.keys = keys
        self._keygen = None
        self.evaluator = CkksEvaluator(params, keys, self.rng)
        self.encoder = self.evaluator.encoder
        return self

    def _power_of_two_steps(self) -> list[int]:
        """The default key set FHE libraries generate (paper §2.2)."""
        slots = self.params.num_slots
        steps: list[int] = []
        step = 1
        while step < slots:
            steps.extend([step, slots - step])
            step *= 2
        return steps

    # -- convenience API ----------------------------------------------------

    def encrypt(self, values, scale: float | None = None,
                level: int | None = None) -> Ciphertext:
        plain = self.evaluator.encode(values, scale, level)
        cipher = self.evaluator.encrypt(plain)
        try:
            cipher.slots_in_use = len(values)
        except TypeError:
            cipher.slots_in_use = self.params.num_slots
        return cipher

    def decrypt(self, cipher: Ciphertext, num_values: int | None = None) -> np.ndarray:
        if num_values is None and cipher.slots_in_use:
            num_values = cipher.slots_in_use
        return self.evaluator.decrypt_decode(cipher, num_values)

    def encode(self, values, scale: float | None = None,
               level: int | None = None) -> Plaintext:
        return self.evaluator.encode(values, scale, level)

    def add_rotation_keys(self, steps: list[int]) -> None:
        if self._keygen is None:
            from repro.errors import KeyError_

            raise KeyError_(
                "context was built from shipped evaluation keys and cannot "
                "generate new rotation keys; the key owner must include "
                "every required step in the serialized key blob"
            )
        new = self._keygen.gen_rotation_keys(self.keys.secret, steps)
        self.keys.rotations.update(new)

    def key_memory_bytes(self) -> int:
        return self.keys.byte_size()

    def make_bootstrapper(self, taylor_degree: int = 7,
                          target_level: int | None = None,
                          bsgs_giant: int | None = None):
        """Build a :class:`Bootstrapper`, generating the keys it needs.

        ``bsgs_giant`` tunes the BSGS split of the four DFT transforms;
        the rotation keys for whatever split is chosen are generated
        here, so a tuned bootstrapper never falls back to composed
        rotations.
        """
        from repro.ckks.bootstrap import Bootstrapper

        bs = Bootstrapper(self.evaluator, taylor_degree, target_level,
                          bsgs_giant=bsgs_giant)
        self.add_rotation_keys(bs.required_rotations())
        if self.keys.conjugation is None:
            self.keys.conjugation = self._keygen.gen_conjugation_key(
                self.keys.secret
            )
        return bs
