"""CKKS batching encoder (message vector <-> plaintext polynomial).

Implements the canonical-embedding encoding of CKKS: a vector of N/2
complex (or real) slot values is mapped to a real polynomial of degree N
whose evaluations at the primitive 2N-th roots of unity ``ζ^(5^t)`` equal
the slot values.  The slot ordering by powers of 5 is what makes the ring
automorphism ``X -> X^(5^k)`` act as a cyclic *rotation* of the slots.

Both directions run in O(N log N) using numpy's FFT after an index
permutation and a half-turn twist.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.utils.bits import is_power_of_two


class CkksEncoder:
    """Encode/decode between complex slot vectors and integer coefficients."""

    def __init__(self, poly_degree: int):
        if not is_power_of_two(poly_degree) or poly_degree < 8:
            raise EncodingError(f"bad ring degree {poly_degree}")
        self.degree = poly_degree
        self.num_slots = poly_degree // 2
        n = poly_degree
        two_n = 2 * n
        # slot t lives at the odd exponent 5^t mod 2N; odd exponent 2k+1
        # corresponds to FFT bin k.
        exps = np.empty(self.num_slots, dtype=np.int64)
        acc = 1
        for t in range(self.num_slots):
            exps[t] = acc
            acc = (acc * 5) % two_n
        self._slot_bins = (exps - 1) // 2
        self._conj_bins = n - 1 - self._slot_bins
        j = np.arange(n)
        self._twist = np.exp(1j * np.pi * j / n)  # ζ^j
        self._untwist = np.conj(self._twist)

    # -- core transforms -----------------------------------------------------

    def embed(self, coeffs: np.ndarray) -> np.ndarray:
        """Evaluate a real-coefficient polynomial at the slot roots.

        ``coeffs`` is a length-N float array; returns N/2 complex slots.
        """
        b = np.asarray(coeffs, dtype=np.complex128) * self._twist
        odd_vals = np.fft.ifft(b) * self.degree
        return odd_vals[self._slot_bins]

    def unembed(self, slots: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`embed`: slots -> real coefficient vector."""
        slots = np.asarray(slots, dtype=np.complex128)
        if slots.shape != (self.num_slots,):
            raise EncodingError(
                f"expected {self.num_slots} slots, got shape {slots.shape}"
            )
        odd_vals = np.zeros(self.degree, dtype=np.complex128)
        odd_vals[self._slot_bins] = slots
        odd_vals[self._conj_bins] = np.conj(slots)
        b = np.fft.fft(odd_vals) / self.degree
        return np.real(b * self._untwist)

    # -- public encode/decode ---------------------------------------------------

    def encode(self, values, scale: float) -> list[int]:
        """Encode a message into integer polynomial coefficients.

        ``values`` may be shorter than N/2 (it is zero-padded) or a scalar
        (broadcast to every slot).  Returns Python ints so callers can build
        an RNS polynomial over arbitrarily large Q.
        """
        if scale <= 0:
            raise EncodingError(f"scale must be positive, got {scale}")
        arr = np.atleast_1d(np.asarray(values, dtype=np.complex128))
        if arr.ndim != 1 or arr.size > self.num_slots:
            raise EncodingError(
                f"message must be a vector of at most {self.num_slots} values"
            )
        if arr.size == 1 and np.isscalar(values):
            slots = np.full(self.num_slots, arr[0], dtype=np.complex128)
        else:
            slots = np.zeros(self.num_slots, dtype=np.complex128)
            slots[: arr.size] = arr
        coeffs = self.unembed(slots) * scale
        if not np.all(np.isfinite(coeffs)):
            raise EncodingError("encoding overflowed float range; lower the scale")
        return [int(v) for v in np.round(coeffs)]

    def decode(self, coeffs, scale: float, num_values: int | None = None) -> np.ndarray:
        """Decode signed integer coefficients back to complex slot values."""
        if scale <= 0:
            raise EncodingError(f"scale must be positive, got {scale}")
        arr = np.array([float(c) for c in coeffs], dtype=np.float64)
        if arr.shape != (self.degree,):
            raise EncodingError(
                f"expected {self.degree} coefficients, got {arr.shape}"
            )
        slots = self.embed(arr) / scale
        if num_values is not None:
            slots = slots[:num_values]
        return slots

    def decode_real(self, coeffs, scale: float, num_values: int | None = None) -> np.ndarray:
        """Decode and drop the (noise-only) imaginary parts."""
        return np.real(self.decode(coeffs, scale, num_values))
