"""Homomorphic polynomial evaluation on ciphertexts.

Two strategies:

* :func:`evaluate_polynomial_horner` — classic Horner scheme; depth equals
  the polynomial degree.  Simple, used as a correctness oracle.
* :func:`evaluate_polynomial` — power-cache evaluation with binary power
  construction (Paterson–Stockmeyer flavoured); depth is
  ``ceil(log2(degree)) + 1``, which is what makes deep nonlinear
  approximations (ReLU sign polynomials, EvalMod Taylor series) affordable.
  The SIHE IR's nonlinear-approximation pass relies on this depth bound
  when computing multiplicative-depth budgets.

Coefficients may be complex (EvalMod uses the complex exponential).
"""

from __future__ import annotations

from repro.ckks.cipher import Ciphertext
from repro.ckks.evaluator import CkksEvaluator
from repro.errors import ParameterError


def polynomial_depth(degree: int) -> int:
    """Multiplicative depth of :func:`evaluate_polynomial` for a degree."""
    if degree <= 0:
        return 0
    if degree == 1:
        return 1
    return (degree - 1).bit_length() + 1


def _align_for_multiply(ev: CkksEvaluator, a: Ciphertext, b: Ciphertext):
    level = min(a.level, b.level)
    return ev.mod_switch_to(a, level), ev.mod_switch_to(b, level)


def _powers(ev: CkksEvaluator, x: Ciphertext, degree: int) -> dict[int, Ciphertext]:
    """Compute x^1..x^degree with binary decomposition, rescaled each mult."""
    powers = {1: x}
    for j in range(2, degree + 1):
        half = j // 2
        rest = j - half
        a, b = _align_for_multiply(ev, powers[half], powers[rest])
        powers[j] = ev.rescale(ev.multiply_relin(a, b))
    return powers


def evaluate_polynomial(
    ev: CkksEvaluator, x: Ciphertext, coeffs: list[complex]
) -> Ciphertext:
    """Evaluate ``sum_k coeffs[k] * x^k`` homomorphically.

    All monomial terms are aligned to a common level and a common scale
    (the constant multipliers are encoded at compensating scales), so a
    single rescale finishes the evaluation.
    """
    if not coeffs:
        raise ParameterError("empty coefficient list")
    degree = len(coeffs) - 1
    while degree > 0 and coeffs[degree] == 0:
        degree -= 1
    if degree == 0:
        plain = ev.encode(coeffs[0], scale=x.scale, level=x.level)
        zero = ev.sub(x, x)
        return ev.add_plain(zero, plain)
    powers = _powers(ev, x, degree)
    deepest = min(p.level for p in powers.values())
    target_scale = float(ev.params.scale) ** 2
    acc = None
    for k in range(1, degree + 1):
        c = coeffs[k]
        if c == 0:
            continue
        term_x = ev.mod_switch_to(powers[k], deepest)
        plain = ev.encode(c, scale=target_scale / term_x.scale, level=deepest)
        term = ev.multiply_plain(term_x, plain)
        acc = term if acc is None else ev.add(acc, term)
    result = ev.rescale(acc)
    if coeffs[0] != 0:
        const = ev.encode(coeffs[0], scale=result.scale, level=result.level)
        result = ev.add_plain(result, const)
    return result


def evaluate_polynomial_horner(
    ev: CkksEvaluator, x: Ciphertext, coeffs: list[complex]
) -> Ciphertext:
    """Horner-scheme evaluation (depth = degree); correctness oracle."""
    if not coeffs:
        raise ParameterError("empty coefficient list")
    degree = len(coeffs) - 1
    while degree > 0 and coeffs[degree] == 0:
        degree -= 1
    if degree == 0:
        plain = ev.encode(coeffs[0], scale=x.scale, level=x.level)
        zero = ev.sub(x, x)
        return ev.add_plain(zero, plain)
    # acc = c_d * x + c_{d-1}
    lead = ev.encode(coeffs[degree], scale=float(ev.params.scale), level=x.level)
    acc = ev.rescale(ev.multiply_plain(x, lead))
    if coeffs[degree - 1] != 0:
        plain = ev.encode(coeffs[degree - 1], scale=acc.scale, level=acc.level)
        acc = ev.add_plain(acc, plain)
    # acc = acc * x + c_k, for k = d-2 .. 0
    for k in range(degree - 2, -1, -1):
        xx = ev.mod_switch_to(x, acc.level)
        acc = ev.rescale(ev.multiply_relin(acc, xx))
        if coeffs[k] != 0:
            plain = ev.encode(coeffs[k], scale=acc.scale, level=acc.level)
            acc = ev.add_plain(acc, plain)
    return acc
