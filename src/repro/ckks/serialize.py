"""Ciphertext and key serialisation (the Figure-2 wire format).

The threat-model protocol ships ciphertexts between client and server;
this module provides a compact binary encoding for ciphertexts and
plaintexts: a small JSON header (scale, level, domain, moduli fingerprint)
followed by the raw residue matrices.  The receiving side validates the
fingerprint against its own basis, so mismatched parameter sets fail
loudly instead of decrypting garbage.
"""

from __future__ import annotations

import hashlib
import json
import struct

import numpy as np

from repro.ckks.cipher import Ciphertext, Plaintext
from repro.errors import ParameterError
from repro.polymath.rns import RnsBasis, RnsPoly

_MAGIC = b"ACEct010"


def basis_fingerprint(basis: RnsBasis) -> str:
    """Stable digest of (degree, moduli-prefix) for compatibility checks."""
    payload = json.dumps([basis.degree, basis.moduli]).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _pack_header(meta: dict) -> bytes:
    blob = json.dumps(meta).encode()
    return _MAGIC + struct.pack("<I", len(blob)) + blob


def _unpack_header(data: bytes) -> tuple[dict, int]:
    if data[: len(_MAGIC)] != _MAGIC:
        raise ParameterError("not an ACE ciphertext payload")
    (length,) = struct.unpack_from("<I", data, len(_MAGIC))
    start = len(_MAGIC) + 4
    meta = json.loads(data[start : start + length])
    return meta, start + length


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    """Encode a ciphertext as bytes."""
    basis = ct.basis
    meta = {
        "kind": "cipher",
        "parts": ct.size,
        "limbs": len(basis),
        "degree": basis.degree,
        "scale": ct.scale,
        "slots_in_use": ct.slots_in_use,
        "is_ntt": ct.parts[0].is_ntt,
        "fingerprint": basis_fingerprint(basis),
    }
    body = b"".join(
        np.ascontiguousarray(p.residues).tobytes() for p in ct.parts
    )
    return _pack_header(meta) + body


def deserialize_ciphertext(data: bytes, basis: RnsBasis) -> Ciphertext:
    """Decode a ciphertext; ``basis`` is the receiver's full chain."""
    meta, offset = _unpack_header(data)
    if meta.get("kind") != "cipher":
        raise ParameterError(f"expected a ciphertext, got {meta.get('kind')}")
    limbs = meta["limbs"]
    degree = meta["degree"]
    sub_basis = basis.prefix(limbs)
    if basis_fingerprint(sub_basis) != meta["fingerprint"]:
        raise ParameterError(
            "ciphertext was produced under a different parameter set"
        )
    count = limbs * degree
    parts = []
    for index in range(meta["parts"]):
        start = offset + index * count * 8
        flat = np.frombuffer(data, dtype=np.uint64, count=count,
                             offset=start)
        parts.append(RnsPoly(sub_basis, flat.reshape(limbs, degree).copy(),
                             meta["is_ntt"]))
    return Ciphertext(parts, meta["scale"], meta["slots_in_use"])


def serialize_plaintext(pt: Plaintext) -> bytes:
    meta = {
        "kind": "plain",
        "parts": 1,
        "limbs": len(pt.poly.basis),
        "degree": pt.poly.basis.degree,
        "scale": pt.scale,
        "is_ntt": pt.poly.is_ntt,
        "fingerprint": basis_fingerprint(pt.poly.basis),
    }
    return _pack_header(meta) + np.ascontiguousarray(
        pt.poly.residues).tobytes()


def deserialize_plaintext(data: bytes, basis: RnsBasis) -> Plaintext:
    meta, offset = _unpack_header(data)
    if meta.get("kind") != "plain":
        raise ParameterError(f"expected a plaintext, got {meta.get('kind')}")
    limbs, degree = meta["limbs"], meta["degree"]
    sub_basis = basis.prefix(limbs)
    if basis_fingerprint(sub_basis) != meta["fingerprint"]:
        raise ParameterError(
            "plaintext was produced under a different parameter set"
        )
    flat = np.frombuffer(data, dtype=np.uint64, count=limbs * degree,
                         offset=offset)
    poly = RnsPoly(sub_basis, flat.reshape(limbs, degree).copy(),
                   meta["is_ntt"])
    return Plaintext(poly, meta["scale"])
