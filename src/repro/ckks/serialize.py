"""Ciphertext and key serialisation (the Figure-2 wire format).

The threat-model protocol ships ciphertexts between client and server;
this module provides a compact binary encoding for ciphertexts and
plaintexts: a small JSON header (scale, level, domain, moduli fingerprint)
followed by the raw residue matrices.  The receiving side validates the
fingerprint against its own basis, so mismatched parameter sets fail
loudly instead of decrypting garbage.

Because the bytes arrive from an untrusted peer, every header field is
validated before it is used: a truncated, bit-flipped, or hostile payload
raises :class:`repro.errors.DeserializationError` rather than leaking a
raw ``struct`` / ``json`` / ``numpy`` exception.
"""

from __future__ import annotations

import hashlib
import json
import struct

import numpy as np

from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.keys import KeyChain, KeySwitchKey, PublicKey
from repro.errors import DeserializationError, ParameterError
from repro.polymath.rns import RnsBasis, RnsPoly

_MAGIC = b"ACEct010"
_KEY_MAGIC = b"ACEek010"

#: upper bound on the JSON header blob; real headers are < 300 bytes
_MAX_HEADER_BYTES = 1 << 16


def basis_fingerprint(basis: RnsBasis) -> str:
    """Stable digest of (degree, moduli-prefix) for compatibility checks."""
    payload = json.dumps([basis.degree, basis.moduli]).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _pack_header(meta: dict) -> bytes:
    blob = json.dumps(meta).encode()
    return _MAGIC + struct.pack("<I", len(blob)) + blob


def _unpack_header(data: bytes) -> tuple[dict, int]:
    if data[: len(_MAGIC)] != _MAGIC:
        raise DeserializationError("not an ACE ciphertext payload")
    if len(data) < len(_MAGIC) + 4:
        raise DeserializationError("payload truncated inside the header")
    (length,) = struct.unpack_from("<I", data, len(_MAGIC))
    if length > _MAX_HEADER_BYTES:
        raise DeserializationError(
            f"header length {length} exceeds the {_MAX_HEADER_BYTES}-byte cap"
        )
    start = len(_MAGIC) + 4
    if len(data) < start + length:
        raise DeserializationError("payload truncated inside the header")
    try:
        meta = json.loads(data[start : start + length])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DeserializationError(f"corrupt header JSON: {exc}") from exc
    if not isinstance(meta, dict):
        raise DeserializationError("header must be a JSON object")
    return meta, start + length


def _require(meta: dict, field: str, kind) -> object:
    """Fetch + type-check one header field."""
    value = meta.get(field)
    if isinstance(value, bool) and kind is not bool:
        raise DeserializationError(f"header field {field!r} has a bad type")
    if not isinstance(value, kind):
        raise DeserializationError(
            f"header field {field!r} missing or has a bad type"
        )
    return value


def _validated_meta(meta: dict, expected_kind: str) -> dict:
    """Validate the untrusted header fields shared by cipher/plain."""
    if meta.get("kind") != expected_kind:
        want = "a ciphertext" if expected_kind == "cipher" else "a plaintext"
        raise ParameterError(f"expected {want}, got {meta.get('kind')}")
    limbs = _require(meta, "limbs", int)
    degree = _require(meta, "degree", int)
    parts = _require(meta, "parts", int)
    scale = _require(meta, "scale", (int, float))
    _require(meta, "is_ntt", bool)
    _require(meta, "fingerprint", str)
    if limbs < 1 or degree < 1 or scale <= 0:
        raise DeserializationError(
            f"implausible header: limbs={limbs} degree={degree} scale={scale}"
        )
    if expected_kind == "cipher" and parts not in (2, 3):
        raise DeserializationError(
            f"ciphertext must have 2 or 3 parts, header says {parts}"
        )
    return meta


def _check_sub_basis(meta: dict, basis: RnsBasis, what: str) -> RnsBasis:
    limbs, degree = meta["limbs"], meta["degree"]
    if degree != basis.degree:
        raise ParameterError(
            f"{what} ring degree {degree} does not match the receiver's "
            f"{basis.degree}"
        )
    if limbs > len(basis):
        raise DeserializationError(
            f"{what} claims {limbs} limbs but the receiver's chain has "
            f"only {len(basis)}"
        )
    sub_basis = basis.prefix(limbs)
    if basis_fingerprint(sub_basis) != meta["fingerprint"]:
        raise ParameterError(
            f"{what} was produced under a different parameter set"
        )
    return sub_basis


def _read_body(data: bytes, offset: int, count: int) -> np.ndarray:
    if len(data) < offset + count * 8:
        raise DeserializationError(
            f"payload truncated: body needs {count * 8} bytes at offset "
            f"{offset}, only {max(len(data) - offset, 0)} present"
        )
    return np.frombuffer(data, dtype=np.uint64, count=count, offset=offset)


def peek_header(data: bytes) -> dict:
    """Parse and return the validated header of a serialized payload.

    Lets a server check ``kind``/``fingerprint`` compatibility (e.g.
    against a session's key context) without touching the body bytes.
    """
    meta, _ = _unpack_header(data)
    kind = meta.get("kind")
    if kind not in ("cipher", "plain"):
        raise DeserializationError(f"unknown payload kind {kind!r}")
    return _validated_meta(meta, kind)


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    """Encode a ciphertext as bytes."""
    basis = ct.basis
    meta = {
        "kind": "cipher",
        "parts": ct.size,
        "limbs": len(basis),
        "degree": basis.degree,
        "scale": ct.scale,
        "slots_in_use": ct.slots_in_use,
        "is_ntt": ct.parts[0].is_ntt,
        "fingerprint": basis_fingerprint(basis),
    }
    body = b"".join(
        np.ascontiguousarray(p.residues).tobytes() for p in ct.parts
    )
    return _pack_header(meta) + body


def deserialize_ciphertext(data: bytes, basis: RnsBasis) -> Ciphertext:
    """Decode a ciphertext; ``basis`` is the receiver's full chain."""
    meta, offset = _unpack_header(data)
    meta = _validated_meta(meta, "cipher")
    sub_basis = _check_sub_basis(meta, basis, "ciphertext")
    limbs, degree = meta["limbs"], meta["degree"]
    slots_in_use = meta.get("slots_in_use")
    if not isinstance(slots_in_use, int) or isinstance(slots_in_use, bool):
        slots_in_use = 0
    count = limbs * degree
    parts = []
    for index in range(meta["parts"]):
        flat = _read_body(data, offset + index * count * 8, count)
        parts.append(RnsPoly(sub_basis, flat.reshape(limbs, degree).copy(),
                             meta["is_ntt"]))
    return Ciphertext(parts, meta["scale"], max(slots_in_use, 0))


def serialize_plaintext(pt: Plaintext) -> bytes:
    meta = {
        "kind": "plain",
        "parts": 1,
        "limbs": len(pt.poly.basis),
        "degree": pt.poly.basis.degree,
        "scale": pt.scale,
        "is_ntt": pt.poly.is_ntt,
        "fingerprint": basis_fingerprint(pt.poly.basis),
    }
    return _pack_header(meta) + np.ascontiguousarray(
        pt.poly.residues).tobytes()


def deserialize_plaintext(data: bytes, basis: RnsBasis) -> Plaintext:
    meta, offset = _unpack_header(data)
    meta = _validated_meta(meta, "plain")
    sub_basis = _check_sub_basis(meta, basis, "plaintext")
    limbs, degree = meta["limbs"], meta["degree"]
    flat = _read_body(data, offset, limbs * degree)
    poly = RnsPoly(sub_basis, flat.reshape(limbs, degree).copy(),
                   meta["is_ntt"])
    return Plaintext(poly, meta["scale"])


# -- evaluation keys (the scale-out serving key exchange) -------------------
#
# ``serialize_eval_keys`` encodes everything an untrusted evaluator needs —
# public key, relinearisation key, rotation keys, conjugation key — and
# *nothing else*: the secret key is structurally absent from the format, so
# shipping a key blob to a model shard can never replicate the secret.  The
# receiving side rebuilds a :class:`~repro.ckks.keys.KeyChain` with
# ``secret=None`` (decryption raises a typed error).

def _poly_bytes(poly: RnsPoly) -> bytes:
    return np.ascontiguousarray(poly.residues).tobytes()


def serialize_eval_keys(keys: KeyChain) -> bytes:
    """Encode the public/evaluation keys (never the secret) as bytes."""
    cipher_basis = keys.public.b.basis
    galois = sorted(keys.rotations)
    ksks: list[KeySwitchKey] = [keys.rotations[g] for g in galois]
    if keys.relin is not None:
        ksks.append(keys.relin)
    if keys.conjugation is not None:
        ksks.append(keys.conjugation)
    if ksks:
        key_basis = ksks[0].pairs[0][0].basis
    else:
        key_basis = cipher_basis
    meta = {
        "kind": "evalkeys",
        "degree": cipher_basis.degree,
        "cipher_limbs": len(cipher_basis),
        "key_limbs": len(key_basis),
        "fingerprint": basis_fingerprint(cipher_basis),
        "key_fingerprint": basis_fingerprint(key_basis),
        "relin": keys.relin is not None,
        "conjugation": keys.conjugation is not None,
        "rotations": galois,
        "num_cipher_primes": (ksks[0].num_cipher_primes if ksks else 0),
        "num_special_primes": (ksks[0].num_special_primes if ksks else 0),
    }
    chunks = [_poly_bytes(keys.public.b), _poly_bytes(keys.public.a)]
    for ksk in ksks:
        for b, a in ksk.pairs:
            chunks.append(_poly_bytes(b))
            chunks.append(_poly_bytes(a))
    blob = json.dumps(meta).encode()
    return _KEY_MAGIC + struct.pack("<I", len(blob)) + blob + b"".join(chunks)


def _unpack_key_header(data: bytes) -> tuple[dict, int]:
    if data[: len(_KEY_MAGIC)] != _KEY_MAGIC:
        raise DeserializationError("not an ACE evaluation-key payload")
    if len(data) < len(_KEY_MAGIC) + 4:
        raise DeserializationError("key payload truncated inside the header")
    (length,) = struct.unpack_from("<I", data, len(_KEY_MAGIC))
    if length > _MAX_HEADER_BYTES:
        raise DeserializationError(
            f"key header length {length} exceeds the "
            f"{_MAX_HEADER_BYTES}-byte cap"
        )
    start = len(_KEY_MAGIC) + 4
    if len(data) < start + length:
        raise DeserializationError("key payload truncated inside the header")
    try:
        meta = json.loads(data[start : start + length])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DeserializationError(f"corrupt key header JSON: {exc}") from exc
    if not isinstance(meta, dict) or meta.get("kind") != "evalkeys":
        raise DeserializationError("payload is not an evaluation-key blob")
    return meta, start + length


def eval_keys_fingerprint(data: bytes) -> str:
    """The cipher-basis fingerprint of a serialized key blob (header only)."""
    meta, _ = _unpack_key_header(data)
    fingerprint = meta.get("fingerprint")
    if not isinstance(fingerprint, str):
        raise DeserializationError("key header carries no fingerprint")
    return fingerprint


def deserialize_eval_keys(data: bytes, cipher_basis: RnsBasis,
                          key_basis: RnsBasis) -> KeyChain:
    """Rebuild an evaluation-only :class:`KeyChain` (``secret=None``).

    ``cipher_basis``/``key_basis`` are the receiver's own chains (from
    :meth:`repro.ckks.params.CkksParameters.make_bases`); fingerprints in
    the untrusted header must match both, so keys generated under foreign
    parameters fail loudly before any polynomial is built.
    """
    meta, offset = _unpack_key_header(data)
    degree = _require(meta, "degree", int)
    if degree != cipher_basis.degree:
        raise ParameterError(
            f"key blob ring degree {degree} does not match the receiver's "
            f"{cipher_basis.degree}"
        )
    for field_name, basis in (("fingerprint", cipher_basis),
                              ("key_fingerprint", key_basis)):
        if _require(meta, field_name, str) != basis_fingerprint(basis):
            raise ParameterError(
                "evaluation keys were generated under a different "
                "parameter set"
            )
    cipher_limbs = _require(meta, "cipher_limbs", int)
    key_limbs = _require(meta, "key_limbs", int)
    if cipher_limbs != len(cipher_basis) or key_limbs != len(key_basis):
        raise DeserializationError(
            f"key blob limb counts ({cipher_limbs}, {key_limbs}) do not "
            f"match the receiver's ({len(cipher_basis)}, {len(key_basis)})"
        )
    galois = meta.get("rotations")
    if not isinstance(galois, list) or not all(
            isinstance(g, int) and not isinstance(g, bool) for g in galois):
        raise DeserializationError("key header rotations must be integers")
    num_cipher = _require(meta, "num_cipher_primes", int)
    num_special = _require(meta, "num_special_primes", int)

    def read_poly(basis: RnsBasis, limbs: int) -> RnsPoly:
        nonlocal offset
        flat = _read_body(data, offset, limbs * degree)
        offset += limbs * degree * 8
        return RnsPoly(basis, flat.reshape(limbs, degree).copy(), True)

    def read_ksk() -> KeySwitchKey:
        pairs = [(read_poly(key_basis, key_limbs),
                  read_poly(key_basis, key_limbs))
                 for _ in range(num_cipher)]
        return KeySwitchKey(pairs=pairs, num_cipher_primes=num_cipher,
                            num_special_primes=num_special)

    public = PublicKey(b=read_poly(cipher_basis, cipher_limbs),
                       a=read_poly(cipher_basis, cipher_limbs))
    rotations = {g: read_ksk() for g in galois}
    relin = read_ksk() if meta.get("relin") else None
    conjugation = read_ksk() if meta.get("conjugation") else None
    return KeyChain(secret=None, public=public, relin=relin,
                    rotations=rotations, conjugation=conjugation)
