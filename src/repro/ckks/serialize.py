"""Ciphertext and key serialisation (the Figure-2 wire format).

The threat-model protocol ships ciphertexts between client and server;
this module provides a compact binary encoding for ciphertexts and
plaintexts: a small JSON header (scale, level, domain, moduli fingerprint)
followed by the raw residue matrices.  The receiving side validates the
fingerprint against its own basis, so mismatched parameter sets fail
loudly instead of decrypting garbage.

Because the bytes arrive from an untrusted peer, every header field is
validated before it is used: a truncated, bit-flipped, or hostile payload
raises :class:`repro.errors.DeserializationError` rather than leaking a
raw ``struct`` / ``json`` / ``numpy`` exception.
"""

from __future__ import annotations

import hashlib
import json
import struct

import numpy as np

from repro.ckks.cipher import Ciphertext, Plaintext
from repro.errors import DeserializationError, ParameterError
from repro.polymath.rns import RnsBasis, RnsPoly

_MAGIC = b"ACEct010"

#: upper bound on the JSON header blob; real headers are < 300 bytes
_MAX_HEADER_BYTES = 1 << 16


def basis_fingerprint(basis: RnsBasis) -> str:
    """Stable digest of (degree, moduli-prefix) for compatibility checks."""
    payload = json.dumps([basis.degree, basis.moduli]).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _pack_header(meta: dict) -> bytes:
    blob = json.dumps(meta).encode()
    return _MAGIC + struct.pack("<I", len(blob)) + blob


def _unpack_header(data: bytes) -> tuple[dict, int]:
    if data[: len(_MAGIC)] != _MAGIC:
        raise DeserializationError("not an ACE ciphertext payload")
    if len(data) < len(_MAGIC) + 4:
        raise DeserializationError("payload truncated inside the header")
    (length,) = struct.unpack_from("<I", data, len(_MAGIC))
    if length > _MAX_HEADER_BYTES:
        raise DeserializationError(
            f"header length {length} exceeds the {_MAX_HEADER_BYTES}-byte cap"
        )
    start = len(_MAGIC) + 4
    if len(data) < start + length:
        raise DeserializationError("payload truncated inside the header")
    try:
        meta = json.loads(data[start : start + length])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DeserializationError(f"corrupt header JSON: {exc}") from exc
    if not isinstance(meta, dict):
        raise DeserializationError("header must be a JSON object")
    return meta, start + length


def _require(meta: dict, field: str, kind) -> object:
    """Fetch + type-check one header field."""
    value = meta.get(field)
    if isinstance(value, bool) and kind is not bool:
        raise DeserializationError(f"header field {field!r} has a bad type")
    if not isinstance(value, kind):
        raise DeserializationError(
            f"header field {field!r} missing or has a bad type"
        )
    return value


def _validated_meta(meta: dict, expected_kind: str) -> dict:
    """Validate the untrusted header fields shared by cipher/plain."""
    if meta.get("kind") != expected_kind:
        want = "a ciphertext" if expected_kind == "cipher" else "a plaintext"
        raise ParameterError(f"expected {want}, got {meta.get('kind')}")
    limbs = _require(meta, "limbs", int)
    degree = _require(meta, "degree", int)
    parts = _require(meta, "parts", int)
    scale = _require(meta, "scale", (int, float))
    _require(meta, "is_ntt", bool)
    _require(meta, "fingerprint", str)
    if limbs < 1 or degree < 1 or scale <= 0:
        raise DeserializationError(
            f"implausible header: limbs={limbs} degree={degree} scale={scale}"
        )
    if expected_kind == "cipher" and parts not in (2, 3):
        raise DeserializationError(
            f"ciphertext must have 2 or 3 parts, header says {parts}"
        )
    return meta


def _check_sub_basis(meta: dict, basis: RnsBasis, what: str) -> RnsBasis:
    limbs, degree = meta["limbs"], meta["degree"]
    if degree != basis.degree:
        raise ParameterError(
            f"{what} ring degree {degree} does not match the receiver's "
            f"{basis.degree}"
        )
    if limbs > len(basis):
        raise DeserializationError(
            f"{what} claims {limbs} limbs but the receiver's chain has "
            f"only {len(basis)}"
        )
    sub_basis = basis.prefix(limbs)
    if basis_fingerprint(sub_basis) != meta["fingerprint"]:
        raise ParameterError(
            f"{what} was produced under a different parameter set"
        )
    return sub_basis


def _read_body(data: bytes, offset: int, count: int) -> np.ndarray:
    if len(data) < offset + count * 8:
        raise DeserializationError(
            f"payload truncated: body needs {count * 8} bytes at offset "
            f"{offset}, only {max(len(data) - offset, 0)} present"
        )
    return np.frombuffer(data, dtype=np.uint64, count=count, offset=offset)


def peek_header(data: bytes) -> dict:
    """Parse and return the validated header of a serialized payload.

    Lets a server check ``kind``/``fingerprint`` compatibility (e.g.
    against a session's key context) without touching the body bytes.
    """
    meta, _ = _unpack_header(data)
    kind = meta.get("kind")
    if kind not in ("cipher", "plain"):
        raise DeserializationError(f"unknown payload kind {kind!r}")
    return _validated_meta(meta, kind)


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    """Encode a ciphertext as bytes."""
    basis = ct.basis
    meta = {
        "kind": "cipher",
        "parts": ct.size,
        "limbs": len(basis),
        "degree": basis.degree,
        "scale": ct.scale,
        "slots_in_use": ct.slots_in_use,
        "is_ntt": ct.parts[0].is_ntt,
        "fingerprint": basis_fingerprint(basis),
    }
    body = b"".join(
        np.ascontiguousarray(p.residues).tobytes() for p in ct.parts
    )
    return _pack_header(meta) + body


def deserialize_ciphertext(data: bytes, basis: RnsBasis) -> Ciphertext:
    """Decode a ciphertext; ``basis`` is the receiver's full chain."""
    meta, offset = _unpack_header(data)
    meta = _validated_meta(meta, "cipher")
    sub_basis = _check_sub_basis(meta, basis, "ciphertext")
    limbs, degree = meta["limbs"], meta["degree"]
    slots_in_use = meta.get("slots_in_use")
    if not isinstance(slots_in_use, int) or isinstance(slots_in_use, bool):
        slots_in_use = 0
    count = limbs * degree
    parts = []
    for index in range(meta["parts"]):
        flat = _read_body(data, offset + index * count * 8, count)
        parts.append(RnsPoly(sub_basis, flat.reshape(limbs, degree).copy(),
                             meta["is_ntt"]))
    return Ciphertext(parts, meta["scale"], max(slots_in_use, 0))


def serialize_plaintext(pt: Plaintext) -> bytes:
    meta = {
        "kind": "plain",
        "parts": 1,
        "limbs": len(pt.poly.basis),
        "degree": pt.poly.basis.degree,
        "scale": pt.scale,
        "is_ntt": pt.poly.is_ntt,
        "fingerprint": basis_fingerprint(pt.poly.basis),
    }
    return _pack_header(meta) + np.ascontiguousarray(
        pt.poly.residues).tobytes()


def deserialize_plaintext(data: bytes, basis: RnsBasis) -> Plaintext:
    meta, offset = _unpack_header(data)
    meta = _validated_meta(meta, "plain")
    sub_basis = _check_sub_basis(meta, basis, "plaintext")
    limbs, degree = meta["limbs"], meta["degree"]
    flat = _read_body(data, offset, limbs * degree)
    poly = RnsPoly(sub_basis, flat.reshape(limbs, degree).copy(),
                   meta["is_ntt"])
    return Plaintext(poly, meta["scale"])
