"""Key generation for RNS-CKKS.

Besides the secret/public key pair, homomorphic evaluation needs
*key-switching keys*: a relinearisation key (switching from s^2 back to s)
and one rotation key per distinct rotation step (switching from the
automorphic image of s back to s).  We use per-prime digit decomposition
(dnum = number of ciphertext primes) with one or more *special* primes P:

    ksk_j = ( -a_j * s + e_j + P * g_j * s',   a_j )      over  R_{QP}

where g_j is the CRT gadget factor for prime j (so that
``sum_j [d]_{q_j} * g_j ≡ d (mod Q)``).  Key switching then computes
``round( sum_j [d]_{q_j} * ksk_j / P )`` which is a valid encryption of
``d * s'`` under ``s`` with small additive noise.

Rotation keys dominate FHE memory (paper §6 RQ2: 34.3 GB of 34.5 GB for
ResNet-20); :meth:`KeyChain.byte_size` exposes the exact sizes the memory
model (Figure 7) is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import KeyError_, ParameterError
from repro.polymath import modmath
from repro.polymath.poly import (
    conjugation_galois_element,
    rotation_galois_element,
)
from repro.polymath.rns import RnsBasis, RnsPoly, gadget_factors


def sample_ternary(basis: RnsBasis, rng: np.random.Generator, hamming: int | None = None) -> RnsPoly:
    """Sample a ternary secret polynomial (coefficients in {-1, 0, 1})."""
    n = basis.degree
    if hamming is None:
        coeffs = rng.integers(-1, 2, size=n)
    else:
        coeffs = np.zeros(n, dtype=np.int64)
        positions = rng.choice(n, size=min(hamming, n), replace=False)
        coeffs[positions] = rng.choice([-1, 1], size=len(positions))
    return RnsPoly.from_int_coeffs(basis, coeffs)


def sample_error(basis: RnsBasis, rng: np.random.Generator, std: float = 3.2) -> RnsPoly:
    """Sample a discrete-Gaussian-ish error polynomial."""
    coeffs = np.round(rng.normal(0.0, std, size=basis.degree)).astype(np.int64)
    return RnsPoly.from_int_coeffs(basis, coeffs)


@dataclass
class SecretKey:
    """The ternary secret, stored over the full key basis (Q * P)."""

    poly: RnsPoly  # NTT form over key basis

    def restrict(self, basis: RnsBasis) -> RnsPoly:
        """The secret reduced to a prefix of the ciphertext basis."""
        count = len(basis)
        return RnsPoly(basis, self.poly.residues[:count].copy(), self.poly.is_ntt)


@dataclass
class PublicKey:
    """Standard RLWE public key (b, a) with b = -a*s + e over basis Q."""

    b: RnsPoly
    a: RnsPoly


@dataclass
class KeySwitchKey:
    """Digit-decomposed key-switching key: one (b_j, a_j) pair per prime."""

    pairs: list[tuple[RnsPoly, RnsPoly]]  # over the full key basis, NTT form
    #: number of ciphertext primes the key was generated for
    num_cipher_primes: int
    #: number of trailing special primes
    num_special_primes: int

    def byte_size(self) -> int:
        return sum(b.byte_size() + a.byte_size() for b, a in self.pairs)


@dataclass
class KeyChain:
    """All key material for one context.

    ``secret`` is ``None`` for an *evaluation-only* chain rebuilt from
    serialized public/evaluation keys (the scale-out serving key
    exchange: :func:`repro.ckks.serialize.serialize_eval_keys` never
    includes the secret, so a model shard can evaluate but not decrypt).
    """

    secret: SecretKey | None
    public: PublicKey
    relin: KeySwitchKey | None = None
    rotations: dict[int, KeySwitchKey] = field(default_factory=dict)
    conjugation: KeySwitchKey | None = None

    def rotation_key(self, galois: int) -> KeySwitchKey:
        try:
            return self.rotations[galois]
        except KeyError as exc:
            raise KeyError_(
                f"no rotation key for Galois element {galois}; generate it "
                f"with KeyGenerator.gen_rotation_keys"
            ) from exc

    def byte_size(self, include_secret: bool = False) -> int:
        """Total evaluation-key memory in bytes (Figure 7 input)."""
        sizes = self.byte_sizes()
        total = sizes["public"] + sizes["relin"] + sizes["conjugation"] \
            + sizes["rotations"]
        if include_secret:
            total += sizes["secret"]
        return total

    def byte_sizes(self) -> dict[str, int]:
        """Per-component breakdown of :meth:`byte_size` (Figure 7 rows)."""
        return {
            "secret": (self.secret.poly.byte_size()
                       if self.secret is not None else 0),
            "public": self.public.b.byte_size() + self.public.a.byte_size(),
            "relin": self.relin.byte_size() if self.relin else 0,
            "conjugation": (self.conjugation.byte_size()
                            if self.conjugation else 0),
            "rotations": sum(k.byte_size()
                             for k in self.rotations.values()),
        }


class KeyGenerator:
    """Generates secret/public/evaluation keys for a parameter set."""

    def __init__(self, cipher_basis: RnsBasis, key_basis: RnsBasis,
                 rng: np.random.Generator, error_std: float = 3.2,
                 secret_hamming_weight: int | None = None):
        if key_basis.moduli[: len(cipher_basis)] != cipher_basis.moduli:
            raise ParameterError("key basis must extend the cipher basis")
        self.cipher_basis = cipher_basis
        self.key_basis = key_basis
        self.num_special = len(key_basis) - len(cipher_basis)
        self.rng = rng
        self.error_std = error_std
        self.secret_hamming_weight = secret_hamming_weight
        self._special_product = 1
        for q in key_basis.moduli[len(cipher_basis):]:
            self._special_product *= q

    # -- base keys ------------------------------------------------------------

    def gen_secret_key(self) -> SecretKey:
        return SecretKey(
            sample_ternary(self.key_basis, self.rng, self.secret_hamming_weight)
        )

    def gen_public_key(self, secret: SecretKey) -> PublicKey:
        a = RnsPoly.uniform_random(self.cipher_basis, self.rng)
        e = sample_error(self.cipher_basis, self.rng, self.error_std)
        s = secret.restrict(self.cipher_basis)
        b = -(a * s) + e
        return PublicKey(b=b, a=a)

    # -- key switching keys ---------------------------------------------------

    def gen_keyswitch_key(self, secret: SecretKey, target: RnsPoly) -> KeySwitchKey:
        """KSK that re-encrypts ``d * target`` as ``d * s`` ciphertexts.

        ``target`` is the secret-like polynomial being eliminated (s^2 for
        relinearisation, sigma(s) for rotations), over the key basis in NTT
        form.
        """
        num_cipher = len(self.cipher_basis)
        gadget = gadget_factors(tuple(self.cipher_basis.moduli))
        p = self._special_product
        pairs = []
        for j in range(num_cipher):
            a_j = RnsPoly.uniform_random(self.key_basis, self.rng)
            e_j = sample_error(self.key_basis, self.rng, self.error_std)
            b_j = -(a_j * secret.poly) + e_j + target.scalar_mul(p * gadget[j])
            pairs.append((b_j, a_j))
        return KeySwitchKey(
            pairs=pairs,
            num_cipher_primes=num_cipher,
            num_special_primes=self.num_special,
        )

    def gen_relin_key(self, secret: SecretKey) -> KeySwitchKey:
        s_squared = secret.poly * secret.poly
        return self.gen_keyswitch_key(secret, s_squared)

    def gen_rotation_keys(self, secret: SecretKey, steps: list[int]) -> dict[int, KeySwitchKey]:
        """Rotation keys for the given slot-rotation steps, keyed by Galois
        element (so equivalent steps share a key)."""
        n = self.key_basis.degree
        keys: dict[int, KeySwitchKey] = {}
        for step in steps:
            galois = rotation_galois_element(step, n)
            if galois in keys or galois == 1:
                continue
            rotated_secret = secret.poly.automorphism(galois)
            keys[galois] = self.gen_keyswitch_key(secret, rotated_secret)
        return keys

    def gen_conjugation_key(self, secret: SecretKey) -> KeySwitchKey:
        galois = conjugation_galois_element(self.key_basis.degree)
        return self.gen_keyswitch_key(secret, secret.poly.automorphism(galois))
