"""RNS-CKKS scheme parameters.

A parameter set fixes the ring degree ``N``, the rescaling scale ``Δ``,
and the RNS modulus chain: one *first* prime (sized for output precision,
the paper's ``Q0``), ``num_levels`` *scale* primes (each close to Δ), and
one or more *special* primes used only inside key switching.

The executable arithmetic layer supports primes up to 50 bits
(:data:`repro.polymath.modmath.MAX_MODULUS_BITS`); the paper's 56/60-bit
targets are still what the *parameter selector* reasons about (see
:mod:`repro.params`), and get clamped here only when a context must
actually run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError, SecurityError
from repro.params.security import max_log_qp_for_degree
from repro.polymath.modmath import MAX_MODULUS_BITS
from repro.polymath.rns import RnsBasis
from repro.utils.bits import is_power_of_two
from repro.utils.primes import generate_prime_chain


@dataclass
class CkksParameters:
    """User-facing RNS-CKKS parameter set.

    Attributes:
        poly_degree: ring degree N (power of two); N/2 complex slots.
        scale_bits: log2 of the rescaling scale Δ.
        first_prime_bits: log2 of q0 (output precision budget).
        num_levels: number of rescaling levels L (chain has L+1 primes).
        num_special_primes: special primes for key switching (≥ 1).
        security_bits: required security level; 0 disables the check
            (toy/test parameters).
    """

    poly_degree: int
    scale_bits: int = 40
    first_prime_bits: int = 50
    num_levels: int = 3
    num_special_primes: int = 1
    security_bits: int = 0
    error_std: float = 3.2
    #: sparse-secret Hamming weight (None = dense ternary).  Bootstrapping
    #: contexts use a sparse secret so the ModRaise overflow count I stays
    #: small (|I| <= h/2 + 1), exactly as in HEAAN-style bootstrapping.
    secret_hamming_weight: int | None = None
    moduli: list[int] = field(init=False, repr=False)
    special_moduli: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.poly_degree) or self.poly_degree < 8:
            raise ParameterError(
                f"poly_degree must be a power of two >= 8, got {self.poly_degree}"
            )
        if self.num_levels < 0:
            raise ParameterError("num_levels must be non-negative")
        if self.num_special_primes < 1:
            raise ParameterError("need at least one special prime")
        for name, bits in (
            ("scale_bits", self.scale_bits),
            ("first_prime_bits", self.first_prime_bits),
        ):
            if not 20 <= bits <= MAX_MODULUS_BITS:
                raise ParameterError(
                    f"{name}={bits} outside executable range "
                    f"[20, {MAX_MODULUS_BITS}]"
                )
        special_bits = max(self.first_prime_bits, self.scale_bits)
        chain_bits = (
            [self.first_prime_bits]
            + [self.scale_bits] * self.num_levels
            + [special_bits] * self.num_special_primes
        )
        primes = generate_prime_chain(chain_bits, self.poly_degree)
        self.moduli = primes[: self.num_levels + 1]
        self.special_moduli = primes[self.num_levels + 1 :]
        if self.security_bits:
            self._check_security()

    def _check_security(self) -> None:
        budget = max_log_qp_for_degree(self.poly_degree, self.security_bits)
        used = sum(q.bit_length() for q in self.moduli + self.special_moduli)
        if used > budget:
            raise SecurityError(
                f"log2(QP) = {used} exceeds the {self.security_bits}-bit "
                f"security budget {budget} for N={self.poly_degree}"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def scale(self) -> int:
        """The default encoding scale Δ."""
        return 1 << self.scale_bits

    @property
    def num_slots(self) -> int:
        return self.poly_degree // 2

    @property
    def max_level(self) -> int:
        """Highest level index (level l means l rescalings remain)."""
        return self.num_levels

    def log_q(self) -> int:
        return sum(q.bit_length() for q in self.moduli)

    def log_qp(self) -> int:
        return self.log_q() + sum(q.bit_length() for q in self.special_moduli)

    # -- basis construction ---------------------------------------------------

    def make_bases(self) -> tuple[RnsBasis, RnsBasis]:
        """Return (ciphertext basis, key basis = ciphertext + specials)."""
        key_basis = RnsBasis(self.moduli + self.special_moduli, self.poly_degree)
        cipher_basis = key_basis.prefix(len(self.moduli))
        return cipher_basis, key_basis

    def describe(self) -> dict:
        """Summary dict used by reports and tests."""
        return {
            "N": self.poly_degree,
            "log2_N": self.poly_degree.bit_length() - 1,
            "slots": self.num_slots,
            "scale_bits": self.scale_bits,
            "first_prime_bits": self.first_prime_bits,
            "levels": self.num_levels,
            "log2_Q": self.log_q(),
            "log2_QP": self.log_qp(),
            "special_primes": self.num_special_primes,
        }
