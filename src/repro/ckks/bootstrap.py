"""CKKS bootstrapping (paper §2.1, §4.4).

Follows the classic HEAAN recipe:

1. **ModRaise** — reinterpret a level-0 ciphertext over the full modulus
   chain.  The underlying plaintext becomes ``m + q0 * I`` for a small
   integer polynomial I (|I| bounded by the sparse-secret Hamming weight).
2. **CoeffToSlot** — homomorphic DFT moving the polynomial *coefficients*
   into the *slots* so the modular reduction can be evaluated slot-wise.
   Because a ciphertext holds N/2 slots and the polynomial has N
   coefficients, this step yields two ciphertexts (low/high halves); the
   factor ``1/q0`` is folded into the transform so slots become
   ``I + m/q0``.
3. **EvalMod** — evaluate ``x mod 1`` via the scaled sine: compute
   ``exp(2*pi*i*x / 2^r)`` with a Taylor polynomial, square r times, and
   take the imaginary part with one conjugation.
4. **SlotToCoeff** — inverse DFT back to coefficient packing, recombining
   the two halves into one refreshed ciphertext.

The refreshed ciphertext sits at a configurable *target level*; ANT-ACE's
bootstrap-placement pass exploits exactly this knob ("only bootstrap a
ciphertext to the minimal levels needed", §4.4) — the cost model charges
less for lower targets, and the `min_target_level` path is what Figure 6's
Bootstrap reduction comes from.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ckks.cipher import Ciphertext
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.linear import LinearTransform, apply_hoisted_batch
from repro.ckks.polyeval import evaluate_polynomial, polynomial_depth
from repro.errors import NoiseBudgetExhausted, ParameterError
from repro.polymath.rns import RnsPoly


class Bootstrapper:
    """Precomputed bootstrapping machinery for one CKKS context."""

    def __init__(
        self,
        ev: CkksEvaluator,
        taylor_degree: int = 7,
        target_level: int | None = None,
        bsgs_giant: int | None = None,
    ):
        """``bsgs_giant`` overrides the BSGS baby split of all four DFT
        transforms (must divide the slot count); None keeps the classic
        ``sqrt(slots)`` balance.  With hoisted baby steps the optimum
        shifts baby-heavy — the layout autotuner threads its tuned split
        through here instead of mutating a module-level default."""
        self.ev = ev
        params = ev.params
        n = params.poly_degree
        slots = params.num_slots
        self.taylor_degree = taylor_degree
        h = params.secret_hamming_weight or n
        #: bound on |I| after ModRaise (HEAAN heuristic h/2 + small slack)
        self.overflow_bound = max(2.0, h / 2 + 2)
        # doubling count r: shrink the Taylor argument below ~0.25 rad
        self.num_doublings = max(
            1, math.ceil(math.log2(2 * math.pi * (self.overflow_bound + 0.5) / 0.25))
        )
        zeta = np.exp(2j * np.pi / (2 * n))
        exps = np.empty(slots, dtype=np.int64)
        acc = 1
        for t in range(slots):
            exps[t] = acc
            acc = (acc * 5) % (2 * n)
        # U[t, j] = zeta^(j * 5^t): slots = U @ coeffs
        j_idx = np.arange(n)
        u_matrix = zeta ** (np.outer(exps, j_idx) % (2 * n))
        u_h = np.conj(u_matrix.T)  # N x N/2
        # CoeffToSlot halves (1/q0 is folded into the EvalMod argument
        # constant instead — 1/(N*q0) here would underflow the plaintext
        # encoding):
        self.bsgs_giant = bsgs_giant
        self._cts_low = LinearTransform(u_h[:slots, :] / n, giant=bsgs_giant)
        self._cts_high = LinearTransform(u_h[slots:, :] / n, giant=bsgs_giant)
        # SlotToCoeff halves: z = U_left @ m_low + U_right @ m_high
        self._stc_left = LinearTransform(u_matrix[:, :slots],
                                         giant=bsgs_giant)
        self._stc_right = LinearTransform(u_matrix[:, slots:],
                                          giant=bsgs_giant)
        self.depth = self._total_depth()
        max_target = params.max_level - self.depth
        if max_target < 1:
            raise ParameterError(
                f"chain too short to bootstrap: depth {self.depth} needs "
                f"at least {self.depth + 1} levels, have {params.max_level}"
            )
        self.target_level = target_level if target_level is not None else max_target
        if self.target_level > max_target:
            raise ParameterError(
                f"target level {self.target_level} unreachable; max {max_target}"
            )

    def _total_depth(self) -> int:
        # CtS (1) + argument scaling (2) + Taylor + doublings +
        # imaginary-part extraction constant (1) + StC (1) +
        # final scale alignment (1)
        return 6 + polynomial_depth(self.taylor_degree) + self.num_doublings

    def required_rotations(self) -> list[int]:
        steps = set()
        for lt in (self._cts_low, self._cts_high, self._stc_left, self._stc_right):
            steps.update(lt.required_rotations())
        return sorted(steps)

    # ------------------------------------------------------------------

    def mod_raise(self, ct: Ciphertext) -> Ciphertext:
        """Reinterpret a low-level ciphertext over the full chain."""
        ev = self.ev
        full = ev.basis_at(ev.params.max_level)
        q0 = ct.basis.moduli[0]
        parts = []
        for part in ct.parts:
            coeffs = part.to_coeff().residues[0]  # residues mod q0 only
            signed = coeffs.astype(np.int64)
            signed[signed > q0 // 2] -= q0
            parts.append(RnsPoly.from_int_coeffs(full, signed))
        return Ciphertext(parts, ct.scale, ct.slots_in_use)

    def _eval_mod(self, ct: Ciphertext) -> Ciphertext:
        """Slots: q0*(I + eps)  ->  eps  (the centred mod-q0 reduction).

        The input slots are raw polynomial coefficients (magnitude up to
        q0 * |I|); the 1/q0 normalisation is folded into the argument
        constant, encoded at a compensating scale chosen so that exactly
        two rescales land the result on the canonical scale Δ.
        """
        ev = self.ev
        r = self.num_doublings
        delta = float(ev.params.scale)
        # u = 2*pi*x / 2^r with x = I + eps (the caller relabelled the
        # scale so the slots are already normalised by q0)
        factor = 2 * math.pi / (1 << r)
        moduli = ct.basis.moduli
        const_scale = delta * moduli[-1] * moduli[-2] / ct.scale
        plain = ev.encode(factor, scale=const_scale, level=ct.level)
        u = ev.rescale(ev.rescale(ev.multiply_plain(ct, plain)))
        # w = exp(i*u) by Taylor series
        coeffs = [1j ** k / math.factorial(k) for k in range(self.taylor_degree + 1)]
        w = evaluate_polynomial(ev, u, coeffs)
        # square r times: w <- w^2
        for _ in range(r):
            w = ev.rescale(ev.multiply_relin(w, w))
        # sin(2*pi*x) = Im(w) = (w - conj(w)) / 2i ; eps ~ sin(2*pi*x)/(2*pi)
        w_conj = ev.conjugate(w)
        diff = ev.sub(w, w_conj)
        c = ev.encode(1.0 / (4j * math.pi), scale=float(ev.params.scale),
                      level=diff.level)
        return ev.rescale(ev.multiply_plain(diff, c))

    def bootstrap(self, ct: Ciphertext) -> Ciphertext:
        """Refresh a (near-)exhausted ciphertext to ``target_level``."""
        ev = self.ev
        params = ev.params
        if ct.size != 2:
            raise ParameterError("relinearise before bootstrapping")
        if ct.level > 0:
            ct = ev.mod_switch_to(ct, 0)
        if not math.isclose(ct.scale, float(params.scale), rel_tol=0.5):
            raise NoiseBudgetExhausted(
                "bootstrap expects the ciphertext at the base scale"
            )
        q0 = params.moduli[0]
        raised = self.mod_raise(ct)
        # CoeffToSlot: two ciphertexts whose slots are coeffs/q0 = I + m/q0.
        # Both halves transform the same ciphertext, so their BSGS baby
        # steps share one hoisted key-switch decomposition.
        z_low, z_high = apply_hoisted_batch(
            ev, raised, [self._cts_low, self._cts_high]
        )
        low = ev.add(z_low, ev.conjugate(z_low))    # slots: m_coeff / Delta'
        high = ev.add(z_high, ev.conjugate(z_high))
        # Relabel scales so the slots read as x = m_coeff/q0 = I + m/q0
        # (q0/Delta' is ~2, so the tracked scale stays healthy).
        relabel = q0 / ct.scale
        low = Ciphertext(low.parts, low.scale * relabel, ct.slots_in_use)
        high = Ciphertext(high.parts, high.scale * relabel, ct.slots_in_use)
        # EvalMod: remove the q0*I overflow
        low = self._eval_mod(low)
        high = self._eval_mod(high)
        # SlotToCoeff
        out = ev.add(
            self._stc_left.apply(ev, low), self._stc_right.apply(ev, high)
        )
        # The slots now hold msg * Delta'/q0 (Delta' = input scale) at the
        # StC output scale s2, i.e. the ciphertext encrypts msg at the
        # effective scale s2 * Delta' / q0 — pure bookkeeping:
        out = Ciphertext(out.parts, out.scale * ct.scale / q0, ct.slots_in_use)
        # Reserve one level for the exact scale alignment below.
        out = ev.mod_switch_to(out, self.target_level + 1)
        out = ev.adjust_scale(out, float(params.scale))
        out = ev.mod_switch_to(out, self.target_level)
        return out
