"""Noise measurement and budget estimation for RNS-CKKS.

CKKS is an *approximate* scheme: every operation adds a little noise, and
the compiler's whole job is to keep the signal comfortably above it.
These utilities measure the actual noise of a ciphertext (given the
secret key and the expected message) and estimate remaining precision —
used by the test-suite to validate the SimBackend's injected-noise
calibration against the real scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ckks.cipher import Ciphertext
from repro.ckks.evaluator import CkksEvaluator


@dataclass
class NoiseReport:
    """Measured precision of one ciphertext."""

    max_error: float
    rms_error: float
    #: -log2 of the max error: "bits of precision" remaining
    precision_bits: float
    level: int
    log_scale: float

    def __str__(self) -> str:
        return (
            f"NoiseReport(level={self.level}, "
            f"precision={self.precision_bits:.1f} bits, "
            f"max_err={self.max_error:.3e})"
        )


def measure_noise(ev: CkksEvaluator, ct: Ciphertext,
                  expected: np.ndarray) -> NoiseReport:
    """Decrypt and compare against the expected cleartext message."""
    got = ev.decrypt_decode(ct, num_values=len(expected))
    err = np.abs(got - np.asarray(expected, dtype=np.float64))
    max_err = float(err.max()) if err.size else 0.0
    rms = float(np.sqrt(np.mean(err**2))) if err.size else 0.0
    return NoiseReport(
        max_error=max_err,
        rms_error=rms,
        precision_bits=-math.log2(max_err) if max_err > 0 else float("inf"),
        level=ct.level,
        log_scale=math.log2(ct.scale),
    )


def fresh_noise_estimate(poly_degree: int, scale: float,
                         error_std: float = 3.2) -> float:
    """Expected max error of a fresh encryption (heuristic bound)."""
    return 8.0 * error_std * math.sqrt(poly_degree) / scale


def keyswitch_noise_estimate(poly_degree: int, scale: float, level: int,
                             error_std: float = 3.2) -> float:
    """Expected additional error from one digit-decomposed key switch."""
    digits = level + 1
    return 8.0 * error_std * digits * math.sqrt(poly_degree) / scale


def remaining_depth(ct: Ciphertext) -> int:
    """Levels available before a bootstrap is forced."""
    return ct.level
