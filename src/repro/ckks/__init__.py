"""ACEfhe-py: the custom RNS-CKKS runtime library (paper §3.3).

This package is the Python analogue of ANT-ACE's ACEfhe C++ library: a
self-contained RNS-CKKS implementation with

* batched complex/real encoding (:mod:`repro.ckks.encoder`),
* key generation including relinearisation / rotation keys with per-prime
  digit decomposition and a special prime (:mod:`repro.ckks.keys`),
* the homomorphic evaluator: add/sub/mul/rotate/conjugate, rescale,
  modulus switching, upscale/downscale, relinearisation
  (:mod:`repro.ckks.evaluator`),
* CKKS bootstrapping — ModRaise, CoeffToSlot/SlotToCoeff, EvalMod
  (:mod:`repro.ckks.bootstrap`).
"""

from repro.ckks.params import CkksParameters
from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.context import CkksContext

__all__ = ["CkksParameters", "Ciphertext", "Plaintext", "CkksContext"]
