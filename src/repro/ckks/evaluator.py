"""The RNS-CKKS homomorphic evaluator.

Implements every primitive the CKKS IR (paper Table 6) targets:
``add, sub, neg, mul`` (cipher-cipher, cipher-plain), ``rotate``,
``conjugate``, ``relin``, ``rescale``, ``modswitch``, ``upscale``,
``downscale``, ``encode`` — plus encryption/decryption.  ``bootstrap``
lives in :mod:`repro.ckks.bootstrap` and is attached by the context.

Key switching is the hot path (paper §4.3–4.4) and is organised so the
expensive half can be shared:

* :meth:`_decompose` performs the digit decomposition + mod-up of a
  polynomial once (inverse NTT, residue lift, batched forward NTT over
  every digit and limb in one numpy pass);
* :meth:`_inner_product` folds the digits with a (level-restricted,
  cached) key-switch key;
* :meth:`rotate_hoisted` reuses one decomposition across many rotation
  steps, applying each Galois automorphism to the decomposed digits as a
  pure NTT-domain permutation ("hoisting", Halevi–Shoup).

``rotate`` routes through the same machinery with a single step, so a
hoisted batch is bit-for-bit identical to a loop of plain rotations.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    CiphertextDegreeError,
    KeyError_,
    LevelMismatchError,
    NoiseBudgetExhausted,
    ParameterError,
    ScaleMismatchError,
)
from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.encoder import CkksEncoder
from repro.ckks.keys import KeyChain, KeySwitchKey, sample_error, sample_ternary
from repro.polymath import modmath
from repro.polymath.crt import signed_coeffs
from repro.polymath.poly import (
    conjugation_galois_element,
    ntt_automorphism_index_map,
    rotation_galois_element,
)
from repro.polymath.rns import RnsBasis, RnsPoly, mod_down_stack

_SCALE_RTOL = 1e-6


def _same_scale(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_SCALE_RTOL)


def _guard_product_scale(a: Ciphertext, other_scale: float, what: str) -> None:
    """Refuse a multiply whose product scale cannot fit the basis.

    A product scale at or past the full remaining modulus wraps the
    message mod Q and decrypt returns garbage with no error anywhere
    downstream — the classic scale-mismanagement failure CHET's
    invariant checking guards against.  Fires only on *guaranteed*
    overflow, so legitimate lazy-rescaling chains never trip it.
    """
    # lazy import: repro.ckks.noise imports this module at its top level
    from repro.ckks.noise import remaining_depth

    capacity_bits = sum(math.log2(q) for q in a.basis.moduli)
    product_bits = math.log2(a.scale) + math.log2(other_scale)
    if product_bits >= capacity_bits:
        raise NoiseBudgetExhausted(
            f"{what} would overflow the modulus chain: product scale "
            f"2^{product_bits:.1f} >= remaining capacity "
            f"2^{capacity_bits:.1f} "
            f"(remaining_depth={remaining_depth(a)}); bootstrap first"
        )


@dataclass
class HoistedDecomposition:
    """The shared (expensive) half of a key switch.

    ``digits`` is a ``(level+1, ext_limbs, N)`` uint64 stack: digit ``j``
    of the decomposed polynomial, lifted into the extended basis and in
    NTT form.  One decomposition serves every rotation step applied to the
    same ciphertext.
    """

    level: int
    ext: RnsBasis
    digits: np.ndarray

    def permuted(self, galois: int) -> np.ndarray:
        """Digits of the automorphic image — an NTT-domain gather."""
        perm = ntt_automorphism_index_map(self.ext.degree, galois)
        return self.digits[:, :, perm]


class CkksEvaluator:
    """Stateless-ish evaluator bound to one parameter set and key chain."""

    def __init__(self, params, keys: KeyChain, rng: np.random.Generator):
        self.params = params
        self.keys = keys
        self.rng = rng
        self.encoder = CkksEncoder(params.poly_degree)
        self.cipher_basis, self.key_basis = params.make_bases()
        self._ext_bases: dict[int, RnsBasis] = {}
        # (id(ksk), level) -> (ksk, key_stack); the ksk reference both
        # pins the key (so ids cannot be recycled under us) and lets
        # lookups verify identity before trusting a cached stack.
        self._ksk_cache: dict[tuple[int, int], tuple[KeySwitchKey, np.ndarray]] = {}
        # guards first-miss population of the memo caches above: the
        # parallel executor hammers one evaluator from many threads, and
        # without the lock concurrent misses would each build (and
        # briefly publish) duplicate stacks.  Lookups stay lock-free —
        # entries are immutable once inserted and dict reads are atomic.
        self._cache_lock = threading.Lock()
        #: key switches spent composing rotations out of power-of-two
        #: steps because no exact key existed (paper §2.2); the compiler's
        #: key-analysis pass exists to drive this to zero.
        self.rotation_fallback_count = 0
        self._fallback_lock = threading.Lock()

    # ------------------------------------------------------------------
    # encoding / encryption
    # ------------------------------------------------------------------

    def basis_at(self, level: int) -> RnsBasis:
        """Ciphertext basis with ``level + 1`` limbs."""
        if not 0 <= level <= self.params.max_level:
            raise ParameterError(f"level {level} out of range")
        return self.cipher_basis.prefix(level + 1)

    def encode(self, values, scale: float | None = None,
               level: int | None = None) -> Plaintext:
        """Encode a cleartext vector at the given scale and level."""
        scale = float(scale if scale is not None else self.params.scale)
        level = self.params.max_level if level is None else level
        coeffs = self.encoder.encode(values, scale)
        poly = RnsPoly.from_int_coeffs(self.basis_at(level), coeffs)
        return Plaintext(poly=poly, scale=scale)

    def decode(self, plain: Plaintext, num_values: int | None = None) -> np.ndarray:
        coeffs = signed_coeffs(
            plain.poly.to_coeff().residues, plain.poly.basis.moduli
        )
        return self.encoder.decode_real(coeffs, plain.scale, num_values)

    def encrypt(self, plain: Plaintext) -> Ciphertext:
        """Public-key encryption of an encoded plaintext."""
        basis = plain.poly.basis
        count = len(basis)
        pk_b = RnsPoly(basis, self.keys.public.b.residues[:count].copy(), True)
        pk_a = RnsPoly(basis, self.keys.public.a.residues[:count].copy(), True)
        u = sample_ternary(basis, self.rng)
        e0 = sample_error(basis, self.rng, self.params.error_std)
        e1 = sample_error(basis, self.rng, self.params.error_std)
        c0 = pk_b * u + e0 + plain.poly
        c1 = pk_a * u + e1
        return Ciphertext([c0, c1], plain.scale)

    def decrypt(self, cipher: Ciphertext) -> Plaintext:
        if self.keys.secret is None:
            raise KeyError_(
                "evaluation-only key chain holds no secret key; only the "
                "key owner (the client side of the Figure-2 protocol) can "
                "decrypt"
            )
        basis = cipher.basis
        s = self.keys.secret.restrict(basis)
        acc = cipher.parts[0] + cipher.parts[1] * s
        if cipher.size == 3:
            acc = acc + cipher.parts[2] * s * s
        return Plaintext(poly=acc, scale=cipher.scale)

    def decrypt_decode(self, cipher: Ciphertext, num_values: int | None = None) -> np.ndarray:
        return self.decode(self.decrypt(cipher), num_values)

    # ------------------------------------------------------------------
    # linear operations
    # ------------------------------------------------------------------

    def _check_binary(self, a: Ciphertext, b) -> None:
        if a.basis.moduli != (b.basis.moduli if isinstance(b, Ciphertext)
                              else b.poly.basis.moduli):
            raise LevelMismatchError(
                "operands at different levels; insert modswitch first"
            )
        b_scale = b.scale
        if not _same_scale(a.scale, b_scale):
            raise ScaleMismatchError(
                f"scales differ: 2^{math.log2(a.scale):.3f} vs "
                f"2^{math.log2(b_scale):.3f}"
            )

    def _check_degrees(self, a: Ciphertext, b: Ciphertext) -> None:
        if a.size != b.size:
            raise CiphertextDegreeError(
                f"ciphertext degrees differ: size {a.size} vs {b.size}; "
                "relinearise (or defer both relins) before adding"
            )

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_binary(a, b)
        self._check_degrees(a, b)
        parts = [pa + pb for pa, pb in zip(a.parts, b.parts)]
        return Ciphertext(parts, a.scale, max(a.slots_in_use, b.slots_in_use))

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_binary(a, b)
        self._check_degrees(a, b)
        parts = [pa - pb for pa, pb in zip(a.parts, b.parts)]
        return Ciphertext(parts, a.scale, max(a.slots_in_use, b.slots_in_use))

    def negate(self, a: Ciphertext) -> Ciphertext:
        return Ciphertext([-p for p in a.parts], a.scale, a.slots_in_use)

    def _align_plain(self, a: Ciphertext, plain: Plaintext) -> Plaintext:
        """Mod-switch ``plain`` down to ``a``'s basis when it sits higher.

        Dropping a plaintext's trailing RNS limbs is exact (no noise, no
        scale change), so a program whose inputs entered below the
        planned level — e.g. a level-aligned batch
        (:func:`repro.serve.batcher.align_to_common_level`) — can still
        consume constants encoded at the planned level.  A plaintext
        *below* the ciphertext stays an error: limbs cannot be invented.
        """
        extra = len(plain.poly.basis) - len(a.basis)
        if extra <= 0:
            return plain
        return Plaintext(poly=plain.poly.drop_last(extra),
                         scale=plain.scale)

    def add_plain(self, a: Ciphertext, plain: Plaintext) -> Ciphertext:
        plain = self._align_plain(a, plain)
        self._check_binary(a, plain)
        parts = [a.parts[0] + plain.poly] + [p.copy() for p in a.parts[1:]]
        return Ciphertext(parts, a.scale, a.slots_in_use)

    def sub_plain(self, a: Ciphertext, plain: Plaintext) -> Ciphertext:
        plain = self._align_plain(a, plain)
        self._check_binary(a, plain)
        parts = [a.parts[0] - plain.poly] + [p.copy() for p in a.parts[1:]]
        return Ciphertext(parts, a.scale, a.slots_in_use)

    # ------------------------------------------------------------------
    # multiplication family
    # ------------------------------------------------------------------

    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Cipher-cipher multiplication; result has 3 parts (Cipher3)."""
        if a.size != 2 or b.size != 2:
            raise ParameterError("relinearise before multiplying again")
        if a.basis.moduli != b.basis.moduli:
            raise LevelMismatchError(
                "operands at different levels; insert modswitch first"
            )
        _guard_product_scale(a, b.scale, "multiply")
        d0 = a.parts[0] * b.parts[0]
        d1 = a.parts[0] * b.parts[1] + a.parts[1] * b.parts[0]
        d2 = a.parts[1] * b.parts[1]
        return Ciphertext(
            [d0, d1, d2], a.scale * b.scale, max(a.slots_in_use, b.slots_in_use)
        )

    def multiply_plain(self, a: Ciphertext, plain: Plaintext) -> Ciphertext:
        plain = self._align_plain(a, plain)
        if a.basis.moduli != plain.poly.basis.moduli:
            raise LevelMismatchError(
                "plaintext encoded at wrong level; re-encode or modswitch"
            )
        _guard_product_scale(a, plain.scale, "multiply_plain")
        parts = [p * plain.poly for p in a.parts]
        return Ciphertext(parts, a.scale * plain.scale, a.slots_in_use)

    def square(self, a: Ciphertext) -> Ciphertext:
        return self.multiply(a, a)

    # ------------------------------------------------------------------
    # scale & level management
    # ------------------------------------------------------------------

    def rescale(self, a: Ciphertext) -> Ciphertext:
        """Divide by the last prime; drops one level, scale /= q_last."""
        if a.level == 0:
            raise NoiseBudgetExhausted(
                "no levels left to rescale; bootstrap required"
            )
        q_last = a.basis.moduli[-1]
        if a.scale / q_last < 1.0:
            raise NoiseBudgetExhausted(
                f"rescale would drop the scale below 1 "
                f"(2^{math.log2(a.scale):.1f} / 2^{math.log2(q_last):.1f}): "
                "the message would be destroyed"
            )
        parts = [p.rescale_last() for p in a.parts]
        return Ciphertext(parts, a.scale / q_last, a.slots_in_use)

    def mod_switch(self, a: Ciphertext, levels: int = 1) -> Ciphertext:
        """Drop limbs without changing the scale."""
        if levels <= 0:
            return a.copy()
        if a.level - levels < 0:
            raise NoiseBudgetExhausted("cannot modswitch below level 0")
        parts = [p.drop_last(levels) for p in a.parts]
        return Ciphertext(parts, a.scale, a.slots_in_use)

    def mod_switch_to(self, a: Ciphertext, level: int) -> Ciphertext:
        if level > a.level:
            raise LevelMismatchError(
                f"cannot raise level {a.level} -> {level} without bootstrap"
            )
        return self.mod_switch(a, a.level - level)

    def upscale(self, a: Ciphertext, extra_scale_bits: int) -> Ciphertext:
        """Multiply by 2^extra_scale_bits without consuming a level."""
        factor = 1 << extra_scale_bits
        parts = [p.scalar_mul(factor) for p in a.parts]
        return Ciphertext(parts, a.scale * factor, a.slots_in_use)

    def downscale(self, a: Ciphertext, target_scale: float) -> Ciphertext:
        """Rescale repeatedly until the scale is at or below the target."""
        out = a
        while out.scale > target_scale * (1 + _SCALE_RTOL) and out.level > 0:
            out = self.rescale(out)
        return out

    def adjust_scale(self, a: Ciphertext, target_scale: float) -> Ciphertext:
        """Force-match a scale by multiplying with an encoded constant 1.

        Consumes one multiplication + rescale worth of budget; used to align
        addition operands whose scales drifted apart.
        """
        if _same_scale(a.scale, target_scale):
            return a
        ratio = target_scale * a.basis.moduli[-1] / a.scale
        if ratio < 1:
            raise ScaleMismatchError(
                f"cannot reduce scale {a.scale} to {target_scale} exactly"
            )
        one = self.encode(1.0, scale=ratio, level=a.level)
        return self.rescale(self.multiply_plain(a, one))

    # ------------------------------------------------------------------
    # key switching: relinearise / rotate / conjugate
    # ------------------------------------------------------------------

    def _extended_basis(self, level: int) -> RnsBasis:
        """Basis (q_0..q_level, specials), sharing precomputed NTT tables."""
        ext = self._ext_bases.get(level)
        if ext is None:
            with self._cache_lock:
                ext = self._ext_bases.get(level)
                if ext is None:
                    moduli = (
                        self.cipher_basis.moduli[: level + 1]
                        + self.key_basis.moduli[len(self.cipher_basis):]
                    )
                    ext = RnsBasis.__new__(RnsBasis)
                    ext.moduli = moduli
                    ext.degree = self.key_basis.degree
                    ext.ntts = (
                        self.key_basis.ntts[: level + 1]
                        + self.key_basis.ntts[len(self.cipher_basis):]
                    )
                    ext._inv_last = {}
                    self._ext_bases[level] = ext
        return ext

    def _restrict_key_poly(self, poly: RnsPoly, level: int) -> RnsPoly:
        """Select the rows of a key-basis polynomial matching level+specials."""
        num_cipher = len(self.cipher_basis)
        idx = list(range(level + 1)) + list(
            range(num_cipher, len(self.key_basis))
        )
        ext = self._extended_basis(level)
        return RnsPoly(ext, poly.residues[idx].copy(), poly.is_ntt)

    def _restricted_ksk(self, ksk: KeySwitchKey, level: int) -> np.ndarray:
        """Level-restricted key stack, shape ``(2, level+1, K, N)``.

        Row 0 holds the ``b`` halves, row 1 the ``a`` halves, one slice per
        digit.  The row selection (drop the unused cipher limbs, keep the
        specials) used to be re-sliced and copied on every digit of every
        key switch; here it is cached per ``(key, level)``.  Entries keep a
        reference to the key and verify identity on lookup, so a key
        object being freed and its ``id`` recycled can never alias a stale
        stack.
        """
        cache_key = (id(ksk), level)
        hit = self._ksk_cache.get(cache_key)
        if hit is not None and hit[0] is ksk:
            return hit[1]
        with self._cache_lock:
            hit = self._ksk_cache.get(cache_key)
            if hit is not None and hit[0] is ksk:
                return hit[1]
            num_cipher = len(self.cipher_basis)
            idx = list(range(level + 1)) + list(
                range(num_cipher, len(self.key_basis))
            )
            stack = np.stack(
                [
                    [ksk.pairs[j][h].residues[idx] for j in range(level + 1)]
                    for h in range(2)
                ]
            )
            self._ksk_cache[cache_key] = (ksk, stack)
            return stack

    def _decompose(self, d: RnsPoly) -> HoistedDecomposition:
        """Digit decomposition + mod-up of ``d`` (the hoistable half).

        One inverse NTT of ``d``, one vectorised residue lift of every
        digit into the extended basis (via the basis' precomputed modulus
        column), and one batched forward NTT over all ``(level+1) * K``
        rows.
        """
        level = len(d.basis) - 1
        ext = self._extended_basis(level)
        d_coeff = d.to_coeff()
        lifted = modmath.mod_reduce(
            d_coeff.residues[:, None, :], ext.moduli_col[None, :, :]
        )
        return HoistedDecomposition(level, ext, ext.ntt_forward(lifted))

    def _inner_product(
        self, digits: np.ndarray, ksk: KeySwitchKey, level: int
    ) -> tuple[RnsPoly, RnsPoly]:
        """Fold decomposed digits with a key: the per-rotation cheap half.

        Each modular product is reduced below ``2^50``, so summing the
        ``level+1`` digit terms in plain uint64 cannot wrap and one final
        ``np.mod`` replaces a chain of modular additions.
        """
        ext = self._extended_basis(level)
        keys = self._restricted_ksk(ksk, level)
        q = ext.moduli_col[None, None, :, :]
        # one fused pass over both key halves: (2, digits, K, N)
        prods = modmath.mul_mod(digits[None, :, :, :], keys, q)
        acc = modmath.mod_reduce(np.add.reduce(prods, axis=1), ext.moduli_col)
        return (
            RnsPoly(ext, acc[0], is_ntt=True),
            RnsPoly(ext, acc[1], is_ntt=True),
        )

    def _mod_down_pair(
        self, acc_b: RnsPoly, acc_a: RnsPoly
    ) -> tuple[RnsPoly, RnsPoly]:
        """Scale the key-switch accumulator pair back down by the specials."""
        num_special = len(self.key_basis) - len(self.cipher_basis)
        down_b, down_a = mod_down_stack([acc_b, acc_a], num_special)
        return down_b, down_a

    def _key_switch(self, d: RnsPoly, ksk: KeySwitchKey) -> tuple[RnsPoly, RnsPoly]:
        """Return (b, a) with b + a*s ≈ d * target over d's basis."""
        decomp = self._decompose(d)
        acc_b, acc_a = self._inner_product(decomp.digits, ksk, decomp.level)
        return self._mod_down_pair(acc_b, acc_a)

    def relinearize(self, a: Ciphertext) -> Ciphertext:
        """Reduce a 3-part ciphertext back to 2 parts (paper `relin`)."""
        if a.size == 2:
            return a.copy()
        if self.keys.relin is None:
            raise ParameterError("no relinearisation key generated")
        ks_b, ks_a = self._key_switch(a.parts[2], self.keys.relin)
        return Ciphertext(
            [a.parts[0] + ks_b, a.parts[1] + ks_a], a.scale, a.slots_in_use
        )

    def multiply_relin(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self.relinearize(self.multiply(a, b))

    def _apply_galois_hoisted(
        self,
        a: Ciphertext,
        galois: int,
        ksk: KeySwitchKey,
        decomp: HoistedDecomposition,
    ) -> Ciphertext:
        """Finish one Galois application from a shared decomposition.

        The automorphism acts on the decomposed digits as an NTT-domain
        permutation; digits stay small (coefficients bounded by their
        source prime in absolute value), so the usual key-switch noise
        analysis is untouched, and because the gadget recombination
        commutes with the automorphism mod Q the result decrypts to
        ``sigma_g(m)`` exactly as the decompose-after-rotate order does.
        """
        c0 = a.parts[0].automorphism(galois)
        acc_b, acc_a = self._inner_product(
            decomp.permuted(galois), ksk, decomp.level
        )
        ks_b, ks_a = self._mod_down_pair(acc_b, acc_a)
        return Ciphertext([c0 + ks_b, ks_a], a.scale, a.slots_in_use)

    def _apply_galois(self, a: Ciphertext, galois: int, ksk: KeySwitchKey) -> Ciphertext:
        if a.size != 2:
            raise ParameterError("relinearise before rotating")
        decomp = self._decompose(a.parts[1])
        return self._apply_galois_hoisted(a, galois, ksk, decomp)

    def rotate(self, a: Ciphertext, steps: int) -> Ciphertext:
        """Cyclically rotate the slot vector left by ``steps``.

        If no key exists for the exact step, the rotation is composed from
        power-of-two rotations, the standard library fallback (paper §2.2).
        Composition costs one key switch per set bit — this is precisely
        the inefficiency ANT-ACE's key-analysis pass removes by generating
        keys for the exact steps a program needs.  Every key switch spent
        on composition increments :attr:`rotation_fallback_count` so tests
        and benchmarks can assert the pass did its job.
        """
        n = self.params.poly_degree
        steps = steps % (n // 2)
        if steps == 0:
            return a.copy()
        galois = rotation_galois_element(steps, n)
        if galois in self.keys.rotations:
            return self._apply_galois(a, galois, self.keys.rotations[galois])
        out = a
        bit = 1
        remaining = steps
        while remaining:
            if remaining & 1:
                g = rotation_galois_element(bit, n)
                ksk = self.keys.rotation_key(g)
                out = self._apply_galois(out, g, ksk)
                with self._fallback_lock:
                    self.rotation_fallback_count += 1
            remaining >>= 1
            bit <<= 1
        return out

    def rotate_hoisted(
        self, a: Ciphertext, steps_list: list[int]
    ) -> dict[int, Ciphertext]:
        """Rotate one ciphertext by many steps, sharing the decomposition.

        The digit decomposition + mod-up (the dominant cost of a rotation)
        runs once; each step then pays only a digit permutation, the
        key inner product, and the mod-down.  Returns ``{step: rotated}``
        keyed by the steps as given.  Steps with no exact rotation key
        fall back to the composed :meth:`rotate` (and count fallbacks);
        results are bit-identical to rotating in a loop either way.
        """
        if a.size != 2:
            raise ParameterError("relinearise before rotating")
        n = self.params.poly_degree
        out: dict[int, Ciphertext] = {}
        hoistable: list[tuple[int, int]] = []
        for step in steps_list:
            if step in out:
                continue
            norm = step % (n // 2)
            if norm == 0:
                out[step] = a.copy()
                continue
            galois = rotation_galois_element(norm, n)
            if galois in self.keys.rotations:
                hoistable.append((step, galois))
            else:
                out[step] = self.rotate(a, step)
        if hoistable:
            decomp = self._decompose(a.parts[1])
            for step, galois in hoistable:
                out[step] = self._apply_galois_hoisted(
                    a, galois, self.keys.rotations[galois], decomp
                )
        return out

    def conjugate(self, a: Ciphertext) -> Ciphertext:
        if self.keys.conjugation is None:
            raise ParameterError("no conjugation key generated")
        galois = conjugation_galois_element(self.params.poly_degree)
        return self._apply_galois(a, galois, self.keys.conjugation)
