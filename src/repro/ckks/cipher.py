"""Ciphertext and plaintext value types for the RNS-CKKS evaluator.

A :class:`Ciphertext` is a tuple of RNS polynomials (2 normally, 3 right
after a cipher-cipher multiplication, before relinearisation) plus the
scale/level metadata the CKKS IR reasons about.  A :class:`Plaintext` is a
single encoded RNS polynomial with the same metadata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.polymath.rns import RnsPoly


@dataclass
class Plaintext:
    """An encoded message: one RNS polynomial + scale."""

    poly: RnsPoly
    scale: float

    @property
    def level(self) -> int:
        """Remaining rescale budget: number of limbs minus one."""
        return len(self.poly.basis) - 1

    def byte_size(self) -> int:
        return self.poly.byte_size()


@dataclass
class Ciphertext:
    """An RNS-CKKS ciphertext (2 or 3 polynomial parts)."""

    parts: list[RnsPoly]
    scale: float
    slots_in_use: int = 0  # informational: message length, 0 = unknown

    def __post_init__(self) -> None:
        if len(self.parts) not in (2, 3):
            raise ParameterError(
                f"ciphertext must have 2 or 3 parts, got {len(self.parts)}"
            )
        bases = {tuple(p.basis.moduli) for p in self.parts}
        if len(bases) != 1:
            raise ParameterError("ciphertext parts live in different bases")

    @property
    def size(self) -> int:
        return len(self.parts)

    @property
    def level(self) -> int:
        """Remaining rescale budget: number of limbs minus one."""
        return len(self.parts[0].basis) - 1

    @property
    def basis(self):
        return self.parts[0].basis

    def copy(self) -> "Ciphertext":
        return Ciphertext(
            [p.copy() for p in self.parts], self.scale, self.slots_in_use
        )

    def byte_size(self) -> int:
        return sum(p.byte_size() for p in self.parts)

    def __repr__(self) -> str:
        log_scale = math.log2(self.scale) if self.scale > 0 else float("-inf")
        return (
            f"Ciphertext(size={self.size}, level={self.level}, "
            f"scale=2^{log_scale:.2f})"
        )
