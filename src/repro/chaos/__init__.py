"""repro.chaos — seeded, deterministic fault injection.

A production FHE endpoint fails in ways a unit test never provokes on
its own: a ciphertext corrupted in flight, a key-switch kernel that
stalls, a client that resets its connection mid-frame.  This module
plants *injection points* at three levels of the stack —

* **backend** (``backend.*``): residue corruption, forced
  :class:`~repro.errors.NoiseBudgetExhausted`, latency spikes in the
  NTT/key-switch hot ops (hooked in ``ExactBackend``/``SimBackend``);
* **executor** (``executor.*``): job exceptions, worker stalls and
  simulated thread death inside
  :meth:`repro.runtime.executor.ParallelExecutor._issue`;
* **serve wire** (``wire.*``, ``serve.*``): truncated and oversized
  frames, connection resets, slow-loris writes (hooked in
  ``ServeClient``) and per-request poisoning (hooked in
  ``InferenceWorker.submit``).

— all driven by a :class:`ChaosPlan`: one seed plus a per-site
:class:`SiteSpec` (probability, optional firing cap, optional
site-specific magnitude).  Every site draws from its *own*
``random.Random`` stream seeded by ``(plan seed, site name)``, so the
k-th decision at a site depends only on the seed and k — the same plan
replays the identical fault sequence (site, firing index, detail) no
matter what the other sites did.  Every firing is appended to an
in-memory replay log (:func:`replay_log`, :func:`dump_log`) so a CI
failure ships the exact faults that provoked it.

With no plan installed every hook is a single ``is None`` check — the
serving and executor benchmarks gate the disabled overhead at < 5%.

Activation:

* programmatic — ``install(plan)`` / ``uninstall()`` / ``active(plan)``;
* environment — ``REPRO_CHAOS`` is parsed at import time
  (:meth:`ChaosPlan.from_spec`): either a bare integer seed (the
  conservative :meth:`ChaosPlan.default` site set) or a full spec like
  ``seed=42;wire.reset=0.05@4;executor.job_exception=0.02@8~0.1``
  (``probability`` [``@max_count``] [``~value``]);
* CLI — ``repro serve --chaos-seed N`` / ``--chaos-spec SPEC``.

If ``REPRO_CHAOS_LOG`` names a file, the replay log is written there
*incrementally* — the plan header when the injector installs, each event
as it fires — and rewritten once at interpreter exit (the CI chaos job
uploads it as an artifact).  The incremental flush means a process
killed mid-run (a chaos soak's whole point) still leaves a replayable
log on disk.

:mod:`repro.chaos.soak` builds on this: a long-running seeded
overload+fault scenario against an in-process serving stack, with a
containment report (``repro soak``).
"""

from __future__ import annotations

import atexit
import json
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ChaosError, NoiseBudgetExhausted, ReproError

# -- fault sites -----------------------------------------------------------

#: backend: corrupt a result ciphertext's residues/values
BACKEND_CORRUPT = "backend.corrupt"
#: backend: raise NoiseBudgetExhausted from a budget-consuming op
BACKEND_NOISE = "backend.noise"
#: backend: sleep ``value`` seconds inside an NTT/key-switch-heavy op
BACKEND_LATENCY = "backend.latency"
#: executor: raise ChaosError from a dispatched job
EXECUTOR_JOB_EXCEPTION = "executor.job_exception"
#: executor: stall a worker for ``value`` seconds
EXECUTOR_STALL = "executor.stall"
#: executor: simulate a dead job thread (an unbounded-looking stall of
#: ``value`` seconds; the watchdog is what bounds it)
EXECUTOR_THREAD_DEATH = "executor.thread_death"
#: serve: poison one inbound request (fails at execution, not submit)
SERVE_POISON = "serve.poison"
#: serve: server computes a result, then drops the connection instead of
#: replying — the client must treat the silence as transient and retry
SERVE_DROP_REPLY = "serve.drop_reply"
#: serve: server flips bytes in the outbound reply frame
SERVE_CORRUPT_REPLY = "serve.corrupt_reply"
#: serve: server sleeps ``value`` seconds *after* committing the result,
#: before replying (client may have timed out / retried by then)
SERVE_DELAY_REPLY = "serve.delay_reply"
#: serve: server sends the reply frame twice
SERVE_DUP_REPLY = "serve.dup_reply"
#: router: kill a shard process right as a request is forwarded to it
ROUTER_SHARD_KILL = "router.shard_kill"
#: wire: client sends half a frame, then drops the connection
WIRE_TRUNCATE = "wire.truncate"
#: wire: client sends a frame whose length prefix exceeds any sane bound
WIRE_OVERSIZE = "wire.oversize"
#: wire: client hard-closes the connection instead of sending
WIRE_RESET = "wire.reset"
#: wire: client trickles the frame out in tiny chunks (slow loris)
WIRE_SLOW = "wire.slow"

ALL_SITES = (
    BACKEND_CORRUPT, BACKEND_NOISE, BACKEND_LATENCY,
    EXECUTOR_JOB_EXCEPTION, EXECUTOR_STALL, EXECUTOR_THREAD_DEATH,
    SERVE_POISON, SERVE_DROP_REPLY, SERVE_CORRUPT_REPLY,
    SERVE_DELAY_REPLY, SERVE_DUP_REPLY,
    ROUTER_SHARD_KILL,
    WIRE_TRUNCATE, WIRE_OVERSIZE, WIRE_RESET, WIRE_SLOW,
)

#: ops eligible for BACKEND_NOISE / BACKEND_LATENCY (the budget-consuming
#: and key-switch-heavy subset; add/encode etc. stay fault-free so plans
#: target the paths that matter)
_NOISE_OPS = frozenset({"mul", "rescale", "rotate", "relin", "conjugate",
                        "bootstrap", "modswitch"})
_LATENCY_OPS = frozenset({"mul", "rotate", "relin", "conjugate",
                          "bootstrap"})

_DEFAULT_VALUES = {
    BACKEND_LATENCY: 0.02,
    EXECUTOR_STALL: 0.25,
    EXECUTOR_THREAD_DEATH: 2.0,
    SERVE_DELAY_REPLY: 0.05,
    WIRE_SLOW: 0.005,
}


# -- plan ------------------------------------------------------------------

@dataclass(frozen=True)
class SiteSpec:
    """How one fault site fires.

    ``probability`` is per *opportunity* (each hook call rolls the
    site's own RNG); ``max_count`` caps total firings (None = no cap);
    ``value`` is the site-specific magnitude (seconds for latency/stall
    sites, unused elsewhere).
    """

    probability: float = 1.0
    max_count: int | None = None
    value: float | None = None

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(
                f"site probability must be in [0, 1], got {self.probability}"
            )
        if self.max_count is not None and self.max_count < 0:
            raise ReproError(f"max_count must be >= 0, got {self.max_count}")


@dataclass(frozen=True)
class ChaosEvent:
    """One replayable firing: which site, its k-th firing, and where."""

    site: str
    index: int  # 1-based per-site firing index
    detail: str  # op name / request id / opcode at the firing point

    def key(self) -> tuple[str, int, str]:
        return (self.site, self.index, self.detail)


class ChaosPlan:
    """Seed + per-site specs.  The whole fault sequence replays from it."""

    def __init__(self, seed: int, sites: dict[str, SiteSpec] | None = None):
        self.seed = int(seed)
        self.sites = dict(sites or {})
        for site in self.sites:
            if site not in ALL_SITES:
                raise ReproError(
                    f"unknown chaos site {site!r} (known: {ALL_SITES})"
                )

    @classmethod
    def default(cls, seed: int) -> "ChaosPlan":
        """A conservative plan every containment layer can heal.

        Only sites whose faults the stack recovers from end-to-end
        (client retry, batch bisection) — suitable for running a whole
        test suite under (the CI chaos job does exactly that).
        """
        return cls(seed, {
            WIRE_RESET: SiteSpec(0.05, max_count=8),
            WIRE_TRUNCATE: SiteSpec(0.05, max_count=8),
            WIRE_SLOW: SiteSpec(0.02, max_count=4, value=0.002),
            EXECUTOR_JOB_EXCEPTION: SiteSpec(0.01, max_count=4),
            BACKEND_LATENCY: SiteSpec(0.01, max_count=8, value=0.005),
        })

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosPlan":
        """Parse ``"seed=42;site=prob[@max_count][~value];..."``.

        A bare integer is shorthand for :meth:`default` with that seed.
        """
        spec = spec.strip()
        if not spec:
            raise ReproError("empty chaos spec")
        try:
            return cls.default(int(spec))
        except ValueError:
            pass
        seed = 0
        sites: dict[str, SiteSpec] = {}
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ReproError(f"bad chaos spec fragment {part!r} "
                                 "(want key=value)")
            key, _, val = part.partition("=")
            key = key.strip()
            val = val.strip()
            if key == "seed":
                seed = int(val)
                continue
            value = None
            max_count = None
            if "~" in val:
                val, _, raw = val.partition("~")
                value = float(raw)
            if "@" in val:
                val, _, raw = val.partition("@")
                max_count = int(raw)
            try:
                probability = float(val)
            except ValueError:
                raise ReproError(
                    f"bad probability {val!r} for chaos site {key!r}"
                ) from None
            sites[key] = SiteSpec(probability, max_count, value)
        return cls(seed, sites)

    def to_spec(self) -> str:
        parts = [f"seed={self.seed}"]
        for site in sorted(self.sites):
            spec = self.sites[site]
            frag = f"{site}={spec.probability:g}"
            if spec.max_count is not None:
                frag += f"@{spec.max_count}"
            if spec.value is not None:
                frag += f"~{spec.value:g}"
            parts.append(frag)
        return ";".join(parts)


# -- injector --------------------------------------------------------------

class _SiteState:
    def __init__(self, seed: int, site: str):
        # string seeding hashes via SHA-512 (random.seed version 2):
        # stable across processes and PYTHONHASHSEED values
        self.rng = random.Random(f"{seed}:{site}")
        self.fired = 0
        self.calls = 0


class ChaosInjector:
    """Runtime state of one installed :class:`ChaosPlan`.

    Thread-safe: each site's decision sequence is serialised under one
    lock, so decision k at a site is the same in any thread interleaving
    (full cross-site event *ordering* is only deterministic when the
    workload itself is).
    """

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._states = {site: _SiteState(plan.seed, site)
                        for site in plan.sites}
        self._events: list[ChaosEvent] = []

    def should_fire(self, site: str, detail: str = "") -> SiteSpec | None:
        """Roll the site's RNG; returns its spec when the fault fires."""
        spec = self.plan.sites.get(site)
        if spec is None:
            return None
        with self._lock:
            state = self._states[site]
            state.calls += 1
            if spec.max_count is not None and state.fired >= spec.max_count:
                return None
            if state.rng.random() >= spec.probability:
                return None
            state.fired += 1
            event = ChaosEvent(site, state.fired, detail)
            self._events.append(event)
            _append_log(event)
            return spec

    def value(self, site: str, spec: SiteSpec) -> float:
        if spec.value is not None:
            return spec.value
        return _DEFAULT_VALUES.get(site, 0.0)

    def events(self) -> list[ChaosEvent]:
        with self._lock:
            return list(self._events)

    def counts(self) -> dict[str, int]:
        with self._lock:
            return {site: state.fired
                    for site, state in self._states.items() if state.fired}


# -- global installation ---------------------------------------------------

_INJECTOR: ChaosInjector | None = None
_install_lock = threading.Lock()

#: incremental replay-log destination (REPRO_CHAOS_LOG / set_log_path)
_LOG_PATH: str | None = None


def set_log_path(path: str | None) -> None:
    """Point the incremental replay log at ``path`` (None disables).

    Events already fired by an installed injector are written out
    immediately, then every subsequent firing is appended and flushed as
    it happens — a process killed mid-soak still leaves a replayable log.
    """
    global _LOG_PATH
    _LOG_PATH = path
    inj = _INJECTOR
    if path and inj is not None:
        _start_log(inj)


def _start_log(inj: ChaosInjector) -> None:
    """(Re)write the log header + any already-fired events. Best-effort:
    replay logging must never take the workload down with it."""
    if _LOG_PATH is None:
        return
    try:
        with open(_LOG_PATH, "w") as fh:
            fh.write(json.dumps({"plan": inj.plan.to_spec()}) + "\n")
            for event in inj.events():
                fh.write(json.dumps({
                    "site": event.site,
                    "index": event.index,
                    "detail": event.detail,
                }) + "\n")
    except OSError:
        pass


def _append_log(event: ChaosEvent) -> None:
    if _LOG_PATH is None:
        return
    try:
        with open(_LOG_PATH, "a") as fh:
            fh.write(json.dumps({
                "site": event.site,
                "index": event.index,
                "detail": event.detail,
            }) + "\n")
    except OSError:
        pass


def install(plan: ChaosPlan) -> ChaosInjector:
    """Install ``plan`` process-wide; returns the fresh injector."""
    global _INJECTOR
    with _install_lock:
        _INJECTOR = ChaosInjector(plan)
        if _LOG_PATH:
            _start_log(_INJECTOR)
        return _INJECTOR


def uninstall() -> None:
    global _INJECTOR
    with _install_lock:
        _INJECTOR = None


def current() -> ChaosInjector | None:
    return _INJECTOR


@contextmanager
def active(plan: ChaosPlan):
    """Scoped installation for tests; restores the previous injector."""
    global _INJECTOR
    with _install_lock:
        previous = _INJECTOR
        injector = _INJECTOR = ChaosInjector(plan)
    try:
        yield injector
    finally:
        with _install_lock:
            _INJECTOR = previous


def replay_log() -> list[tuple[str, int, str]]:
    """The installed injector's fault sequence as plain tuples."""
    inj = _INJECTOR
    return [e.key() for e in inj.events()] if inj else []


def dump_log(path: str) -> None:
    """Write the replay log (plan spec + events) as JSON lines."""
    inj = _INJECTOR
    if inj is None:
        return
    with open(path, "w") as fh:
        fh.write(json.dumps({"plan": inj.plan.to_spec()}) + "\n")
        for event in inj.events():
            fh.write(json.dumps({
                "site": event.site,
                "index": event.index,
                "detail": event.detail,
            }) + "\n")


# -- hooks (each is a no-op costing one global read when disabled) ---------

def on_backend_op(op: str) -> None:
    """Backend-level faults: forced budget exhaustion, latency spikes."""
    inj = _INJECTOR
    if inj is None:
        return
    if op in _NOISE_OPS and inj.should_fire(BACKEND_NOISE, op):
        raise NoiseBudgetExhausted(
            f"chaos: injected noise-budget exhaustion at {op}"
        )
    if op in _LATENCY_OPS:
        spec = inj.should_fire(BACKEND_LATENCY, op)
        if spec:
            time.sleep(inj.value(BACKEND_LATENCY, spec))


def corrupt_result(op: str, result):
    """Backend-level residue/value corruption of an op result.

    Returns a corrupted *copy* when the site fires (the input object may
    be shared with other requests); the original otherwise.
    """
    inj = _INJECTOR
    if inj is None:
        return result
    if inj.should_fire(BACKEND_CORRUPT, op) is None:
        return result
    corrupted = result.copy()
    parts = getattr(corrupted, "parts", None)
    if parts is not None:  # exact Ciphertext: RNS residue corruption
        residues = parts[0].residues
        modulus = parts[0].basis.moduli[0]
        residues[0, :8] = (residues[0, :8] + modulus // 3 + 1) % modulus
    else:  # SimCipher: blow up the first few slots
        corrupted.values[:8] += 1e6
    return corrupted


def on_executor_op(opcode: str) -> None:
    """Executor-level faults: job exceptions, stalls, thread death."""
    inj = _INJECTOR
    if inj is None:
        return
    if inj.should_fire(EXECUTOR_JOB_EXCEPTION, opcode):
        raise ChaosError(f"chaos: injected job exception at {opcode}")
    spec = inj.should_fire(EXECUTOR_STALL, opcode)
    if spec:
        time.sleep(inj.value(EXECUTOR_STALL, spec))
    spec = inj.should_fire(EXECUTOR_THREAD_DEATH, opcode)
    if spec:
        # a "dead" thread, as far as the coordinator can tell: the op
        # never completes within any watchdog window.  Bounded so test
        # processes terminate.
        time.sleep(inj.value(EXECUTOR_THREAD_DEATH, spec))


def poison_request(request_id: int) -> bool:
    """serve-level: should this inbound request be poisoned?"""
    inj = _INJECTOR
    if inj is None:
        return False
    return inj.should_fire(SERVE_POISON, f"request {request_id}") is not None


def wire_fault() -> tuple[str, SiteSpec] | None:
    """Client-wire faults: first of truncate/oversize/reset/slow to fire."""
    inj = _INJECTOR
    if inj is None:
        return None
    for site in (WIRE_RESET, WIRE_TRUNCATE, WIRE_OVERSIZE, WIRE_SLOW):
        spec = inj.should_fire(site, "rpc")
        if spec:
            return site, spec
    return None


def reply_fault(detail: str = "") -> tuple[str, SiteSpec] | None:
    """Server-side reply faults: drop/corrupt/dup/delay the outbound frame.

    Fired *after* the server computed (committed) the result — these
    exercise the client's at-most-once machinery: a dropped or corrupt
    reply must surface as a transient error and a retry, a duplicated
    reply must be discarded by request-id correlation, and a delayed
    reply must not pair with the wrong request.
    """
    inj = _INJECTOR
    if inj is None:
        return None
    for site in (SERVE_DROP_REPLY, SERVE_CORRUPT_REPLY,
                 SERVE_DUP_REPLY, SERVE_DELAY_REPLY):
        spec = inj.should_fire(site, detail)
        if spec:
            return site, spec
    return None


def shard_kill(detail: str = "") -> bool:
    """Router-level: should this forwarded request's shard be killed?"""
    inj = _INJECTOR
    if inj is None:
        return False
    return inj.should_fire(ROUTER_SHARD_KILL, detail) is not None


# -- environment activation ------------------------------------------------

_env_spec = os.environ.get("REPRO_CHAOS", "").strip()
if _env_spec:
    install(ChaosPlan.from_spec(_env_spec))

_env_log = os.environ.get("REPRO_CHAOS_LOG", "").strip()
if _env_log:
    # incremental flush while running + an idempotent rewrite at exit
    set_log_path(_env_log)
    atexit.register(dump_log, _env_log)
