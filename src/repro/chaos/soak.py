"""Chaos soak: a seeded, long-running overload + fault scenario.

The point of the serving layer's containment machinery — AIMD load
shedding, deadline-aware batching, partial-batch re-packing, breakers,
typed transient errors — is what happens over *minutes* of sustained
overload with faults firing, not in one unit test.  This module runs
exactly that scenario against an in-process serving stack and reports
whether containment held:

1. **calibrate** — closed-loop, no chaos, no shedding: measure the
   stack's single-load capacity (requests/sec) and unloaded p95;
2. **soak** — open-loop arrivals at ``overload x capacity`` for
   ``duration_s`` with a seeded :class:`~repro.chaos.ChaosPlan`
   installed and shedding enabled, every request carrying a deadline
   derived from the unloaded p95;
3. **report** — classify every outcome (good = replied inside its
   deadline; shed / queue-full / circuit-open backpressure; timeouts;
   transient vs non-transient failures) next to the chaos events that
   fired.

The invariants a healthy stack maintains (gated by
``benchmarks/bench_overload.py`` and the CI soak job):

* goodput stays >= 70% of calibrated capacity despite 3x offered load;
* admitted requests' p95 stays <= 2x the unloaded p95 (the shedder
  keeps the queue short instead of letting everyone wait);
* zero non-transient client errors — overload and faults surface only
  as typed transient rejections a client can back off on.

Everything is deterministic from ``SoakConfig.seed``: the chaos plan,
the arrival schedule, and the request payloads.  Run one from the CLI
with ``repro soak`` (``--out`` writes the JSON report).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass

import numpy as np

import repro.errors as errors_mod
from repro import chaos
from repro.ckks import CkksParameters
from repro.onnx import OnnxGraphBuilder, load_model_bytes, model_to_bytes
from repro.serve import InferenceWorker, Metrics, ModelRegistry


@dataclass
class SoakConfig:
    """One soak scenario, fully determined by its fields."""

    seed: int = 42
    #: open-loop phase length (the calibration phase is on top)
    duration_s: float = 8.0
    #: offered load as a multiple of calibrated capacity
    overload: float = 3.0
    workers: int = 2
    #: small on purpose: bounds worst-case queue delay to roughly
    #: ``queue_size / capacity`` so admitted requests can still meet
    #: their deadlines; overload beyond it is shed, not buffered
    queue_size: int = 32
    max_batch: int = 8
    #: closed-loop requests used to measure capacity / unloaded p95
    calibration_requests: int = 48
    #: chaos spec for the soak phase (None = :func:`soak_plan`)
    chaos_spec: str | None = None
    shed_policy: str = "aimd"
    repack: bool = True
    #: request deadline as a multiple of the unloaded p95
    deadline_factor: float = 8.0
    #: admission controller latency target as a multiple of unloaded p95
    target_factor: float = 1.5


def soak_plan(seed: int) -> chaos.ChaosPlan:
    """The default soak fault mix: every site is containable in-process.

    Poisoned requests exercise partial-batch re-packing, executor job
    exceptions exercise bisection/breaker accounting, and backend
    latency spikes push the p95 signal the admission controller sheds
    on.  Wire sites are omitted — the soak drives the worker directly,
    so there is no client socket for them to break.
    """
    return chaos.ChaosPlan(seed, {
        chaos.SERVE_POISON: chaos.SiteSpec(0.02, max_count=16),
        chaos.EXECUTOR_JOB_EXCEPTION: chaos.SiteSpec(0.01, max_count=8),
        chaos.BACKEND_LATENCY: chaos.SiteSpec(0.02, max_count=16,
                                              value=0.01),
    })


def build_soak_registry(max_batch: int = 8, repack: bool = True,
                        align_levels: bool = False) -> tuple:
    """A small GEMM model that tiles ``max_batch`` requests per ciphertext.

    Same shape as the serving throughput benchmark: 24 features into 3
    outputs, 512 slots = 8 blocks of 64.  Returns ``(registry, weights)``.
    """
    rng = np.random.default_rng(0)
    builder = OnnxGraphBuilder("gemm")
    builder.add_input("features", [1, 24])
    builder.add_initializer(
        "w", (rng.normal(size=(3, 24)) * 0.3).astype(np.float32))
    builder.add_initializer("b", rng.normal(size=(3,)).astype(np.float32))
    builder.add_node("Gemm", ["features", "w", "b"], outputs=["output"],
                     transB=1)
    builder.add_output("output", [1, 3])
    model = load_model_bytes(model_to_bytes(builder.build()))
    weights = {t.name: t.to_numpy() for t in model.graph.initializer}
    registry = ModelRegistry()
    params = CkksParameters(poly_degree=1024, scale_bits=30,
                            first_prime_bits=40, num_levels=4)
    registry.register("gemm", model, params=params, max_batch=max_batch,
                      seed=7, repack=repack, align_levels=align_levels)
    return registry, weights


def _fresh_cts(entry, count: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    return [entry.encryptor(entry.backend,
                            rng.uniform(-1, 1, size=(1, 24)))
            for _ in range(count)]


def calibrate(entry, config: SoakConfig) -> dict:
    """Closed-loop, chaos-free, shed-free capacity + unloaded p95."""
    cts = _fresh_cts(entry, config.calibration_requests, config.seed)
    metrics = Metrics()
    with InferenceWorker(metrics=metrics, num_threads=config.workers,
                         queue_size=config.queue_size,
                         max_wait_s=0.05,
                         request_timeout_s=600.0) as worker:
        started = time.perf_counter()
        # closed loop at concurrency = max_batch: enough in flight to
        # fill batches, never enough to queue
        window = max(1, entry.max_batch)
        responses = []
        for base in range(0, len(cts), window):
            futures = [worker.submit(entry, "calibrate", ct)
                       for ct in cts[base:base + window]]
            responses.extend(worker.wait(f, timeout_s=600) for f in futures)
        elapsed = time.perf_counter() - started
    ok = [r for r in responses if r.ok]
    if not ok:
        raise errors_mod.ServeError(
            "soak calibration produced no successful responses")
    latencies = sorted(r.latency_s for r in ok)
    rank = min(len(latencies) - 1, round(0.95 * (len(latencies) - 1)))
    return {
        "capacity_rps": len(ok) / elapsed,
        "unloaded_p95_s": latencies[rank],
        "calibration_requests": len(ok),
    }


def _classify(ok: bool, error: str | None) -> str:
    """Bucket one outcome (by error class name) for the report."""
    if ok:
        return "ok"
    cls = getattr(errors_mod, error or "", None)
    if not (isinstance(cls, type) and issubclass(cls, errors_mod.ReproError)):
        return "non_transient"
    if cls is errors_mod.OverloadShedError:
        return "shed"
    if cls is errors_mod.QueueFullError:
        return "queue_full"
    if cls is errors_mod.CircuitOpenError:
        return "circuit_open"
    if cls is errors_mod.RequestTimeoutError:
        return "timeout"
    return "transient" if cls.transient else "non_transient"


def run_soak(config: SoakConfig | None = None, entry=None) -> dict:
    """Run calibration + the overload soak; returns the containment report.

    ``entry`` lets callers reuse an already-registered model (the bench
    does, to keep its wall-clock down); by default a fresh soak registry
    is compiled.
    """
    config = config or SoakConfig()
    if entry is None:
        registry, _ = build_soak_registry(max_batch=config.max_batch,
                                          repack=config.repack)
        entry = registry.get("gemm")
    cal = calibrate(entry, config)
    deadline_s = max(0.25, config.deadline_factor * cal["unloaded_p95_s"])
    target_p95_s = max(0.05, config.target_factor * cal["unloaded_p95_s"])
    offered_rps = max(1.0, config.overload * cal["capacity_rps"])
    total = max(1, int(offered_rps * config.duration_s))
    cts = _fresh_cts(entry, min(total, 64), config.seed + 1)

    plan = (chaos.ChaosPlan.from_spec(config.chaos_spec)
            if config.chaos_spec else soak_plan(config.seed))
    outcomes: dict[str, int] = {}
    ok_latencies: list[float] = []
    good = 0

    metrics = Metrics()
    with chaos.active(plan) as injector, \
            InferenceWorker(
                metrics=metrics,
                num_threads=config.workers,
                queue_size=config.queue_size,
                max_wait_s=0.05,
                request_timeout_s=deadline_s,
                shed_policy=config.shed_policy,
                shed_max_rate=max(8.0, 2.0 * cal["capacity_rps"]),
                shed_target_p95_s=target_p95_s,
            ) as worker, \
            ThreadPoolExecutor(max_workers=16,
                               thread_name_prefix="soak-wait") as waiters:

        def wait_one(future):
            response = worker.wait(future, timeout_s=deadline_s + 1.0)
            bucket = _classify(response.ok, response.error)
            if bucket == "ok" and response.latency_s <= deadline_s:
                return "good", response.latency_s
            if bucket == "ok":
                return "late", response.latency_s
            return bucket, None

        pending = []
        started = time.perf_counter()
        for i in range(total):
            due = started + i / offered_rps
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                future = worker.submit(entry, "soak", cts[i % len(cts)],
                                       timeout_s=deadline_s)
            except errors_mod.ReproError as exc:
                bucket = _classify(False, type(exc).__name__)
                outcomes[bucket] = outcomes.get(bucket, 0) + 1
                continue
            pending.append(waiters.submit(wait_one, future))
        for item in pending:
            bucket, latency = item.result()
            outcomes[bucket] = outcomes.get(bucket, 0) + 1
            if latency is not None:
                ok_latencies.append(latency)
            if bucket == "good":
                good += 1
        elapsed = time.perf_counter() - started
        fired = injector.counts()
        events = len(injector.events())

    snap = metrics.snapshot()
    counters = snap["counters"]
    ok_latencies.sort()
    admitted_p95 = (ok_latencies[min(len(ok_latencies) - 1,
                                     round(0.95 * (len(ok_latencies) - 1)))]
                    if ok_latencies else 0.0)
    non_transient = outcomes.get("non_transient", 0)
    return {
        "config": asdict(config),
        **cal,
        "deadline_s": deadline_s,
        "target_p95_s": target_p95_s,
        "offered_rps": offered_rps,
        "sent": total,
        "elapsed_s": elapsed,
        "outcomes": outcomes,
        "goodput_rps": good / elapsed if elapsed else 0.0,
        "goodput_fraction_of_capacity": (
            (good / elapsed) / cal["capacity_rps"]
            if elapsed and cal["capacity_rps"] else 0.0),
        "admitted_p95_s": admitted_p95,
        "admitted_p95_over_unloaded": (
            admitted_p95 / cal["unloaded_p95_s"]
            if cal["unloaded_p95_s"] else 0.0),
        "non_transient_errors": non_transient,
        "chaos": {
            "plan": plan.to_spec(),
            "fired": fired,
            "events": events,
        },
        "metrics": {
            name: counters.get(name, 0)
            for name in ("serve_shed_total", "serve_deadline_miss_total",
                         "serve_batch_repacks", "serve_batch_bisections",
                         "serve_requests_total",
                         "serve_requests_rejected_total")
        },
        "contained": non_transient == 0,
    }


def render(report: dict) -> str:
    """ASCII containment report (evalharness / ``repro soak`` output)."""
    lines = [
        "chaos soak containment report",
        "=============================",
        f"seed:               {report['config']['seed']}",
        f"chaos plan:         {report['chaos']['plan']}",
        f"capacity:           {report['capacity_rps']:8.2f} req/s "
        f"(unloaded p95 {report['unloaded_p95_s'] * 1e3:.1f} ms)",
        f"offered:            {report['offered_rps']:8.2f} req/s "
        f"({report['config']['overload']:.1f}x) for "
        f"{report['elapsed_s']:.1f}s = {report['sent']} requests",
        f"deadline:           {report['deadline_s'] * 1e3:.1f} ms",
        "",
        "outcomes:",
    ]
    for bucket in ("good", "late", "shed", "queue_full", "circuit_open",
                   "timeout", "transient", "non_transient"):
        count = report["outcomes"].get(bucket, 0)
        if count:
            lines.append(f"  {bucket:<14} {count:6d}")
    lines += [
        "",
        f"goodput:            {report['goodput_rps']:8.2f} req/s "
        f"({report['goodput_fraction_of_capacity'] * 100:.0f}% of capacity)",
        f"admitted p95:       {report['admitted_p95_s'] * 1e3:8.1f} ms "
        f"({report['admitted_p95_over_unloaded']:.2f}x unloaded)",
        f"chaos events:       {report['chaos']['events']} "
        f"{report['chaos']['fired']}",
        f"repacks/bisections: {report['metrics']['serve_batch_repacks']:g}/"
        f"{report['metrics']['serve_batch_bisections']:g}",
        f"non-transient:      {report['non_transient_errors']}",
        f"containment:        "
        f"{'HELD' if report['contained'] else 'BROKEN'}",
    ]
    return "\n".join(lines)
