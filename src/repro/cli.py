"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile`` — compile an ONNX model: emits the generated Python program,
  the external weights file, the client encryptor/decryptor tools and a
  compilation report (the §3.4 artifact set).
* ``run`` — compile and execute one encrypted inference on the simulation
  backend with a random (or ``.npy``) input.
* ``report`` — regenerate the paper's figures/tables
  (same as ``python -m repro.evalharness.report``).
* ``serve`` — compile a model once and serve encrypted inference over a
  local socket, with cross-request CKKS slot batching (``repro.serve``);
  ``--shard`` starts an empty router-managed shard instead.
* ``router`` — scale-out serving: spawn N shard processes and route the
  same wire protocol to them with key-memory-aware placement
  (``repro.serve.router``).
* ``client`` — connect to a running server, encrypt inputs locally, and
  run the Figure-2 protocol over the wire.
* ``soak`` — seeded long-running overload + fault-injection scenario
  against an in-process server; prints a containment report and exits
  nonzero if any client saw a non-transient error (``repro.chaos.soak``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np


def _add_compile_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("model", help="path to an .onnx file")
    parser.add_argument("--sign-iterations", type=int, default=4)
    parser.add_argument("--no-bootstrap", action="store_true")
    parser.add_argument("--batch-size", type=int, default=1)
    parser.add_argument("--gemm-strategy", default="auto",
                        choices=("auto", "dedup", "bsgs"))
    parser.add_argument("--poly-mode", default="stats",
                        choices=("off", "stats", "full"))
    parser.add_argument("--opt-level", type=int, default=2,
                        choices=(0, 1, 2),
                        help="op-reduction optimizer: 0 = raw lowering, "
                             "1 = bit-exact rewrites (CSE, dedup, folds), "
                             "2 = + rotation composition, lazy relin, "
                             "rescale sinking (default)")
    parser.add_argument("--layout-tune", default="heuristic",
                        choices=("off", "heuristic", "search"),
                        help="packing/BSGS layout selection: 'heuristic' "
                             "keeps the fixed rules and records the "
                             "modeled cost (default), 'search' runs the "
                             "cost-model-driven per-layer autotuner, "
                             "'off' skips the machinery entirely "
                             "(identical output to 'heuristic')")


def _options_from(args):
    from repro.compiler import CompileOptions

    return CompileOptions(
        sign_iterations=args.sign_iterations,
        bootstrap_enabled=not args.no_bootstrap,
        batch_size=args.batch_size,
        gemm_strategy=args.gemm_strategy,
        poly_mode=args.poly_mode,
        opt_level=args.opt_level,
        layout_tune=args.layout_tune,
    )


def _layout_summary_line(program) -> str | None:
    """One-line layout-autotune summary (None when nothing to report)."""
    layout = program.stats.get("layout")
    if not layout or layout.get("mode") in (None, "off"):
        return None
    line = f"layout: mode {layout['mode']}"
    plan = layout.get("plan")
    if plan:
        line += f", {len(plan)} override(s)"
    speedup = layout.get("predicted_vector_speedup")
    if speedup:
        line += f", predicted vector speedup {speedup:.2f}x"
    predicted = layout.get("predicted_seconds")
    if predicted is not None:
        line += f", predicted {predicted:.3f}s"
    measured = layout.get("measured_seconds")
    if measured is not None:
        line += f", measured {measured:.3f}s"
    return line


def _opt_summary_line(program) -> str:
    """One-line optimizer summary, e.g. for ``repro run`` logs."""
    opt = program.stats.get("opt", {})
    before = opt.get("key_switches_before")
    after = opt.get("key_switches_after")
    if before is None or not before:
        return (f"opt: level {opt.get('opt_level', '?')}, "
                f"no rewrites recorded")
    saved = 100.0 * (before - after) / before
    line = (f"opt: level {opt['opt_level']}, key switches "
            f"{before} -> {after} (-{saved:.1f}%), ops "
            f"{opt['ops_before']} -> {opt['ops_after']}")
    levels = program.stats.get("levels", {})
    if levels.get("enabled"):
        line += (f"; replan: bootstraps "
                 f"{levels.get('bootstraps_before', 0)} -> "
                 f"{levels.get('bootstraps_after', 0)}, targets "
                 f"{levels.get('targets_before', [])} -> "
                 f"{levels.get('targets_after', [])}")
    return line


def _explain_table(program) -> str:
    """Per-pass op-delta table from ``program.stats['opt']``, followed by
    the level-replanner's per-round deltas (``program.stats['levels']``)."""
    rows = program.stats.get("opt", {}).get("rows", [])
    if not rows:
        return "no optimizer passes ran (--opt-level 0)"
    header = (f"{'stage':<6} {'pass':<18} {'rewrites':>8} "
              f"{'ops':>12} {'key-switches':>14} {'levels':>10} "
              f"{'bootstraps':>12}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['stage']:<6} {row['pass']:<18} {row['rewrites']:>8} "
            f"{row['ops_before']:>5} -> {row['ops_after']:<4} "
            f"{row['key_switches_before']:>6} -> {row['key_switches_after']:<5} "
            f"{row['level_span_before']:>4} -> {row['level_span_after']:<3} "
            f"{row.get('bootstraps_before', 0):>5} -> "
            f"{row.get('bootstraps_after', 0):<4}"
        )
    levels = program.stats.get("levels", {})
    if levels.get("enabled"):
        lines.append("")
        lines.append(
            f"level replan: {levels.get('rounds_run', 0)} round(s), "
            f"bootstraps {levels.get('bootstraps_before', 0)} -> "
            f"{levels.get('bootstraps_after', 0)}, targets "
            f"{levels.get('targets_before', [])} -> "
            f"{levels.get('targets_after', [])}, modeled cost "
            f"{levels.get('cost_before', 0.0):.3f}s -> "
            f"{levels.get('cost_after', 0.0):.3f}s"
        )
        for row in levels.get("rounds", []):
            lines.append(
                f"  round {row['round']}: proposal {row['proposal']}, "
                f"ops {row['ops_before']} -> {row['ops_after']}, "
                f"bootstraps {row['bootstraps_before']} -> "
                f"{row['bootstraps_after']}, "
                f"{'adopted' if row['adopted'] else 'rejected'}"
            )
        relin = levels.get("relin")
        if relin:
            lines.append(
                f"  global relin placement: {relin['relins_before']} -> "
                f"{relin['relins_after']} relins, "
                f"{'adopted' if relin['adopted'] else 'kept peephole plan'}"
            )
    return "\n".join(lines)


def _compile(args) -> int:
    from repro.codegen import write_python_package
    from repro.compiler import ACECompiler
    from repro.compiler.artifacts import write_client_tools
    from repro.onnx import load_model

    out_dir = Path(args.output)
    program = ACECompiler(load_model(args.model),
                          _options_from(args)).compile()
    py_path = write_python_package(program.module, out_dir, "fhe_program")
    tools_path = write_client_tools(program, out_dir)
    report = {
        "model": str(args.model),
        "selection": program.selection.table10_row(),
        "scheme": {
            "poly_degree": program.scheme.poly_degree,
            "levels": program.scheme.num_levels,
            "scale_bits": program.scheme.scale_bits,
        },
        "ckks_ops": program.stats["ckks_ops"],
        "rotation_keys": len(program.rotation_steps),
        "opt": program.stats.get("opt", {}),
        "levels": program.stats.get("levels", {}),
        "layout": program.stats.get("layout", {}),
        "compile_seconds": {
            k: round(v, 3) for k, v in program.pass_timers.items()
        },
    }
    if "poly" in program.stats:
        report["poly_ir_lines"] = program.stats["poly"].get("poly_ir_lines")
    (out_dir / "report.json").write_text(json.dumps(report, indent=2))
    print(f"generated program: {py_path}")
    print(f"client tools:      {tools_path}")
    print(f"report:            {out_dir / 'report.json'}")
    if args.explain:
        print(_explain_table(program))
    print(_opt_summary_line(program))
    layout_line = _layout_summary_line(program)
    if layout_line:
        print(layout_line)
    print(json.dumps(report["selection"]))
    return 0


def _install_chaos(args) -> None:
    """Activate fault injection from ``--chaos-seed``/``--chaos-spec``.

    The environment variable ``REPRO_CHAOS`` (handled at import time by
    :mod:`repro.chaos`) offers the same knob to uninstrumented entry
    points; the explicit flags win when both are present.
    """
    from repro import chaos

    spec = getattr(args, "chaos_spec", None)
    seed = getattr(args, "chaos_seed", None)
    if spec:
        chaos.install(chaos.ChaosPlan.from_spec(spec))
    elif seed is not None:
        chaos.install(chaos.ChaosPlan.default(seed))


def _add_chaos_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--chaos-seed", type=int, default=None,
                        help="enable the default deterministic "
                             "fault-injection plan with this seed "
                             "(repro.chaos)")
    parser.add_argument("--chaos-spec", default=None,
                        help="full chaos spec, e.g. "
                             "'seed=42;wire.reset=0.05@4' "
                             "(overrides --chaos-seed)")


def _install_kernel(args) -> None:
    """Select the NTT/RNS kernel backend from ``--kernel`` and warm it up.

    Without the flag the process keeps the lazy default
    (``$REPRO_KERNEL`` or numpy, resolved on first use).  JIT backends
    are warmed immediately so the first inference never pays
    compilation latency.
    """
    choice = getattr(args, "kernel", None)
    if choice is None:
        return
    from repro.polymath import kernels

    backend = kernels.set_backend(choice)
    seconds = kernels.warmup()
    if backend.jit:
        print(f"kernel backend: {backend.name} "
              f"(warmed up in {seconds:.2f}s)")


def _add_kernel_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel", default=None,
                        choices=("numpy", "numba", "cuda", "pyloops",
                                 "auto"),
                        help="NTT/RNS kernel backend (default: "
                             "$REPRO_KERNEL or numpy); 'auto' probes "
                             "cuda then numba and falls back to numpy "
                             "with a warning")


def _add_overload_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shed-policy", default="aimd",
                        choices=("off", "aimd"),
                        help="overload admission control: 'aimd' sheds "
                             "excess load with a typed transient error "
                             "when the latency/deadline signal degrades "
                             "(default), 'off' admits everything the "
                             "queue can hold")
    parser.add_argument("--shed-target-p95-s", type=float, default=None,
                        help="latency target for the AIMD signal; a "
                             "windowed p95 above it backs admission off "
                             "even without deadline misses")
    parser.add_argument("--repack", action="store_true",
                        help="on a poisoned batch, re-pack the healthy "
                             "B-1 requests into one batch instead of "
                             "bisecting to singletons")
    parser.add_argument("--align-levels", action="store_true",
                        help="mod-switch same-scale requests at "
                             "different levels to a common level so "
                             "they can share one batch ciphertext")


def _run(args) -> int:
    import time

    from repro.compiler import ACECompiler
    from repro.onnx import load_model

    _install_chaos(args)
    _install_kernel(args)
    program = ACECompiler(load_model(args.model),
                          _options_from(args)).compile()
    shape = program.input_layouts[0].shape
    if args.input:
        tensor = np.load(args.input)
    else:
        tensor = np.random.default_rng(args.seed).normal(size=shape) * 0.5
    print(_opt_summary_line(program))
    backend = program.make_sim_backend(seed=args.seed)
    started = time.perf_counter()
    outputs = program.run(backend, tensor, check_plan=False,
                          jobs=args.jobs)
    program.note_measured_seconds(time.perf_counter() - started)
    layout_line = _layout_summary_line(program)
    if layout_line:
        print(layout_line)
    for index, out in enumerate(outputs):
        print(f"output[{index}]: {np.round(out.ravel(), 5).tolist()}")
    return 0


def _jobs_arg(value: str):
    """``--jobs`` accepting an integer or the literal ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}") from None


def _serve_params(args):
    from repro.ckks import CkksParameters

    return CkksParameters(
        poly_degree=args.poly_degree,
        scale_bits=args.scale_bits,
        first_prime_bits=args.first_prime_bits,
        num_levels=args.levels,
    )


def _serve(args) -> int:
    from repro.serve import InferenceServer, ModelRegistry, ShardServer

    _install_chaos(args)
    _install_kernel(args)
    registry = ModelRegistry()
    if args.shard:
        # shard mode: an empty server whose models (and secret-free
        # evaluation keys) are pushed over the wire by a router
        server = ShardServer(
            registry, host=args.host, port=args.port,
            num_threads=args.workers, queue_size=args.queue_size,
            max_wait_s=args.max_wait_ms / 1000.0,
            request_timeout_s=args.timeout_s,
            exec_jobs=args.jobs,
            shed_policy=args.shed_policy,
            shed_target_p95_s=args.shed_target_p95_s,
        )
        print(f"shard ready on {server.host}:{server.port} "
              "(models arrive via register_model)")
    else:
        if not args.model:
            print("error: a model path is required unless --shard is given",
                  file=sys.stderr)
            return 2
        model_id = args.model_id or Path(args.model).stem
        entry = registry.register(
            model_id, str(args.model), params=_serve_params(args),
            max_batch=args.batch_size, seed=args.seed,
            repack=args.repack, align_levels=args.align_levels,
            layout_tune=args.layout_tune,
        )
        server = InferenceServer(
            registry, host=args.host, port=args.port,
            num_threads=args.workers, queue_size=args.queue_size,
            max_wait_s=args.max_wait_ms / 1000.0,
            request_timeout_s=args.timeout_s,
            exec_jobs=args.jobs,
            shed_policy=args.shed_policy,
            shed_target_p95_s=args.shed_target_p95_s,
        )
        print(f"serving model {model_id!r} on {server.host}:{server.port} "
              f"(fingerprint {entry.fingerprint}, "
              f"batch up to {entry.max_batch} requests/ciphertext)")
    if args.port_file:
        Path(args.port_file).write_text(str(server.port))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _router(args) -> int:
    from repro.serve import RouterServer

    _install_chaos(args)
    _install_kernel(args)
    router = RouterServer(
        num_shards=args.shards,
        host=args.host, port=args.port,
        key_budget=args.key_budget,
        dispatch_threads=args.dispatch_threads,
        request_timeout_s=args.timeout_s,
        shard_workers=args.workers,
        shard_jobs=args.jobs,
        shard_mem_budget=args.mem_budget,
        shard_kernel=args.kernel,
        shard_shed_policy=args.shed_policy,
    )
    try:
        for index, path in enumerate(args.models):
            model_id = Path(path).stem
            spec = router.add_model(
                model_id, path, params=_serve_params(args),
                max_batch=args.batch_size, seed=args.seed + index,
                repack=args.repack, align_levels=args.align_levels,
            )
            shard = router.placement.shard_of(model_id)
            print(f"model {model_id!r}: {spec.key_bytes} key bytes "
                  f"-> shard {shard}")
        print(f"routing {len(args.models)} model(s) across "
              f"{args.shards} shard(s) on {router.host}:{router.port}")
        if args.port_file:
            Path(args.port_file).write_text(str(router.port))
        router.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        router.stop()
    return 0


def _client(args) -> int:
    from repro.serve import RemoteModelClient

    with RemoteModelClient(args.host, args.port, args.model_id) as client:
        shape = client.in_shape
        if args.input:
            tensors = [np.load(args.input)] * args.requests
        else:
            rng = np.random.default_rng(args.seed)
            tensors = [rng.normal(size=shape) * 0.5
                       for _ in range(args.requests)]
        for index, tensor in enumerate(tensors):
            out = client.infer(tensor)
            print(f"response[{index}]: {np.round(out.ravel(), 5).tolist()}")
        if args.show_metrics:
            print(client.rpc_client.metrics()["text"], end="")
    return 0


def _report(args) -> int:
    from repro.evalharness.report import generate_report

    models = tuple(m.strip() for m in args.models.split(",") if m.strip())
    generate_report(args.output, models, args.scale, args.images)
    return 0


def _soak(args) -> int:
    from repro.chaos import soak

    _install_kernel(args)
    config = soak.SoakConfig(
        seed=args.seed,
        duration_s=args.duration_s,
        overload=args.overload,
        workers=args.workers,
        chaos_spec=args.chaos_spec,
        shed_policy=args.shed_policy,
        repack=not args.no_repack,
    )
    report = soak.run_soak(config)
    print(soak.render(report))
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2))
        print(f"report written to {args.out}")
    return 1 if report["non_transient_errors"] > 0 else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ANT-ACE reproduction: FHE compiler for ONNX models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile an ONNX model")
    _add_compile_options(p_compile)
    p_compile.add_argument("-o", "--output", default="fhe_out")
    p_compile.add_argument("--explain", action="store_true",
                           help="print the optimizer's per-pass op-delta "
                                "table (ops, key switches, levels)")
    p_compile.set_defaults(fn=_compile)

    p_run = sub.add_parser("run", help="compile and run one inference")
    _add_compile_options(p_run)
    p_run.add_argument("--input", help="optional .npy input tensor")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--jobs", type=int, default=None,
                       help="executor threads for op-level parallelism "
                            "(default: $REPRO_JOBS or 1)")
    _add_kernel_option(p_run)
    _add_chaos_options(p_run)
    p_run.set_defaults(fn=_run)

    p_serve = sub.add_parser(
        "serve", help="serve encrypted inference over a local socket")
    p_serve.add_argument("model", nargs="?", default=None,
                         help="path to an .onnx file (optional with "
                              "--shard: models then arrive over the wire)")
    p_serve.add_argument("--shard", action="store_true",
                         help="run as a router-managed shard: start empty "
                              "and accept register_model pushes carrying "
                              "model bytes + serialized evaluation keys")
    p_serve.add_argument("--model-id", default=None,
                         help="id clients use (default: model file stem)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7707,
                         help="TCP port (0 = pick a free one)")
    p_serve.add_argument("--batch-size", type=int, default=4,
                         help="max requests packed into one ciphertext")
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument("--queue-size", type=int, default=64)
    p_serve.add_argument("--max-wait-ms", type=float, default=5.0,
                         help="batching linger before executing a partial "
                              "batch")
    p_serve.add_argument("--timeout-s", type=float, default=30.0)
    p_serve.add_argument("--seed", type=int, default=7)
    p_serve.add_argument("--poly-degree", type=int, default=256)
    p_serve.add_argument("--scale-bits", type=int, default=30)
    p_serve.add_argument("--first-prime-bits", type=int, default=40)
    p_serve.add_argument("--levels", type=int, default=4)
    p_serve.add_argument("--jobs", type=_jobs_arg, default=None,
                         help="executor threads shared across workers for "
                              "op-level parallelism; 'auto' sizes the "
                              "shared budget from schedule width x batch "
                              "occupancy (default: $REPRO_JOBS or 1)")
    p_serve.add_argument("--layout-tune", default="heuristic",
                         choices=("off", "heuristic", "search"),
                         help="layout/BSGS autotuning for the served "
                              "compile; 'search' pays extra compile time "
                              "once at startup")
    p_serve.add_argument("--port-file", default=None,
                         help="write the bound port here once listening")
    _add_overload_options(p_serve)
    _add_kernel_option(p_serve)
    _add_chaos_options(p_serve)
    p_serve.set_defaults(fn=_serve)

    p_router = sub.add_parser(
        "router",
        help="scale-out serving: route requests across shard processes")
    p_router.add_argument("models", nargs="+",
                          help="paths to .onnx files (model id = file stem)")
    p_router.add_argument("--shards", type=int, default=2,
                          help="shard processes to spawn (default 2)")
    p_router.add_argument("--host", default="127.0.0.1")
    p_router.add_argument("--port", type=int, default=7707,
                          help="TCP port (0 = pick a free one)")
    p_router.add_argument("--batch-size", type=int, default=4)
    p_router.add_argument("--workers", type=int, default=2,
                          help="worker threads per shard")
    p_router.add_argument("--dispatch-threads", type=int, default=8)
    p_router.add_argument("--timeout-s", type=float, default=60.0)
    p_router.add_argument("--seed", type=int, default=7,
                          help="keygen seed for the first model; model i "
                               "uses seed+i")
    p_router.add_argument("--key-budget", type=int, default=None,
                          help="per-shard resident evaluation-key byte "
                               "budget; exceeding it LRU-evicts idle "
                               "models' key material")
    p_router.add_argument("--mem-budget", type=int, default=None,
                          help="per-shard live-ciphertext byte budget "
                               "(caps executor issue width, "
                               "$REPRO_MEM_BUDGET)")
    p_router.add_argument("--jobs", type=int, default=None,
                          help="executor threads per shard")
    p_router.add_argument("--poly-degree", type=int, default=256)
    p_router.add_argument("--scale-bits", type=int, default=30)
    p_router.add_argument("--first-prime-bits", type=int, default=40)
    p_router.add_argument("--levels", type=int, default=4)
    p_router.add_argument("--port-file", default=None,
                          help="write the bound port here once listening")
    _add_overload_options(p_router)
    _add_kernel_option(p_router)
    _add_chaos_options(p_router)
    p_router.set_defaults(fn=_router)

    p_client = sub.add_parser(
        "client", help="run the Figure-2 protocol against a server")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=7707)
    p_client.add_argument("--model-id", required=True)
    p_client.add_argument("--input", help="optional .npy input tensor")
    p_client.add_argument("--requests", type=int, default=1)
    p_client.add_argument("--seed", type=int, default=0)
    p_client.add_argument("--show-metrics", action="store_true")
    p_client.set_defaults(fn=_client)

    p_soak = sub.add_parser(
        "soak",
        help="seeded overload + fault-injection soak with a containment "
             "report (repro.chaos.soak)")
    p_soak.add_argument("--seed", type=int, default=42)
    p_soak.add_argument("--duration-s", type=float, default=8.0,
                        help="open-loop overload phase length "
                             "(calibration runs on top)")
    p_soak.add_argument("--overload", type=float, default=3.0,
                        help="offered load as a multiple of calibrated "
                             "capacity")
    p_soak.add_argument("--workers", type=int, default=2)
    p_soak.add_argument("--chaos-spec", default=None,
                        help="override the built-in soak fault plan")
    p_soak.add_argument("--shed-policy", default="aimd",
                        choices=("off", "aimd"))
    p_soak.add_argument("--no-repack", action="store_true",
                        help="contain poisoned batches by bisection "
                             "instead of partial-batch re-packing")
    p_soak.add_argument("--out", default=None,
                        help="also write the JSON report here")
    _add_kernel_option(p_soak)
    p_soak.set_defaults(fn=_soak)

    p_report = sub.add_parser("report", help="regenerate paper artifacts")
    p_report.add_argument("-o", "--output", default="results")
    p_report.add_argument("--models", default="ResNet-20")
    p_report.add_argument("--scale", default="ci", choices=("ci", "paper"))
    p_report.add_argument("--images", type=int, default=5)
    p_report.set_defaults(fn=_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
