"""Operation-level parallel executor for compiled CKKS programs.

The sequential interpreter issues one homomorphic op at a time, even
though PR 2 vectorised every kernel (numpy releases the GIL inside the
NTT/modmul hot loops) and the compiled op list is full of independent
work — parallel residual branches, independent BSGS giant steps,
per-channel convolutions.  :class:`ParallelExecutor` runs the same op
list through the :mod:`repro.ir.schedule` dependency DAG instead:

* ready ops (all producers retired) are dispatched onto a
  ``concurrent.futures.ThreadPoolExecutor``; completion-driven list
  scheduling, not stage barriers, so a long branch never stalls short
  ones;
* the coordinator thread owns the environment: workers receive
  pre-gathered arguments and return a result, all bookkeeping (env
  insertion, liveness refcounts, dependent wake-up) is single-threaded;
* dead ciphertexts are dropped the moment their last consumer retires
  (the schedule's ``consumers`` refcounts — same eager freeing as the
  sequential interpreter);
* ``jobs=1`` executes the identical dispatch/liveness code in program
  order on the calling thread — the sequential interpreter is literally
  the one-job case of this scheduler.

**Determinism contract**: backends must evaluate each op as a pure
function of its arguments (both bundled backends do — see
``docs/INTERNALS.md`` "Parallel execution"), so results are bit-identical
to sequential execution regardless of completion order.

``jobs`` resolution: explicit argument, else the ``REPRO_JOBS``
environment variable, else 1.  A shared :class:`JobBudget` caps the
*total* worker threads across concurrent executions (the serving layer
hands every worker the same budget so serve threads × executor threads
cannot oversubscribe the host).

**Memory-aware dispatch bounding**: parallelism widens the *working
set* — every in-flight op pins its operands and will materialise a
result ciphertext.  With ``mem_budget`` set (explicit argument or the
``REPRO_MEM_BUDGET`` environment variable, bytes), the coordinator
stops issuing ready ops once live ciphertext bytes plus the Figure-7
projection of in-flight results would exceed the budget — width
degrades toward sequential under memory pressure instead of thrashing
a shard past its container limit.  At least one op always stays in
flight, so progress (and the one-job case) is untouched.  Capped
dispatch decisions are counted in :func:`width_capped_total` (exported
as ``executor_width_capped_total`` by the serving metrics).
"""

from __future__ import annotations

import os
import threading
import weakref
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

from repro import chaos
from repro.errors import (
    ExecutorStalledError,
    ReproError,
    RuntimeBackendError,
)
from repro.ir.core import Function, Module
from repro.ir.schedule import OpSchedule, compute_schedule


_width_capped_lock = threading.Lock()
_width_capped_total = 0


def width_capped_total() -> int:
    """Process-wide count of dispatch rounds the memory budget capped."""
    with _width_capped_lock:
        return _width_capped_total


def _record_width_cap() -> None:
    global _width_capped_total
    with _width_capped_lock:
        _width_capped_total += 1


def resolve_mem_budget(budget: int | None = None) -> int | None:
    """Effective live-ciphertext byte budget: explicit >
    ``REPRO_MEM_BUDGET`` env > None (unbounded)."""
    if budget is None:
        raw = os.environ.get("REPRO_MEM_BUDGET", "").strip()
        if not raw:
            return None
        try:
            budget = int(raw)
        except ValueError:
            raise ReproError(
                f"REPRO_MEM_BUDGET must be an integer byte count, "
                f"got {raw!r}"
            ) from None
    if budget <= 0:
        raise ReproError(f"mem_budget must be positive, got {budget}")
    return budget


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective job count: explicit > ``REPRO_JOBS`` env > 1."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ReproError(
                    f"REPRO_JOBS must be an integer, got {raw!r}"
                ) from None
        else:
            jobs = 1
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    return jobs


class JobBudget:
    """A shared cap on concurrent executor worker threads.

    Each execution requests its desired job count and is granted what is
    available — but always at least one, so progress is guaranteed even
    when the budget is exhausted (the grantee then runs sequentially).
    The serving layer creates one budget per process so N serve workers
    each asking for J jobs collectively stay at ~``limit`` threads
    instead of ``N * J``.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ReproError(f"job budget must be >= 1, got {limit}")
        self.limit = limit
        self._available = limit
        self._lock = threading.Lock()

    def acquire(self, want: int) -> int:
        """Grant between 1 and ``want`` jobs without blocking."""
        if want <= 1:
            return 1
        with self._lock:
            extra = max(0, min(want - 1, self._available - 1))
            self._available -= 1 + extra
            return 1 + extra

    def release(self, granted: int) -> None:
        with self._lock:
            self._available += granted
            if self._available > self.limit:  # defensive: double release
                self._available = self.limit

    def resize(self, limit: int) -> None:
        """Retarget the cap without disturbing outstanding grants.

        Shrinking can drive ``_available`` negative; ``acquire`` then
        grants the guaranteed single job until enough releases repay the
        debt, so the budget converges to the new cap instead of
        stranding threads.
        """
        if limit < 1:
            raise ReproError(f"job budget must be >= 1, got {limit}")
        with self._lock:
            self._available += limit - self.limit
            self.limit = limit

    @property
    def available(self) -> int:
        with self._lock:
            return self._available


#: schedules are cheap but serve recomputes per request otherwise;
#: keyed by Function (weak), invalidated when the body length changes
_schedule_cache: "weakref.WeakKeyDictionary[Function, tuple[int, OpSchedule]]"
_schedule_cache = weakref.WeakKeyDictionary()
_schedule_cache_lock = threading.Lock()


def cached_schedule(fn: Function) -> OpSchedule:
    """Per-function memoised :func:`compute_schedule` (thread-safe)."""
    with _schedule_cache_lock:
        hit = _schedule_cache.get(fn)
        if hit is not None and hit[0] == len(fn.body):
            return hit[1]
    schedule = compute_schedule(fn)
    with _schedule_cache_lock:
        _schedule_cache[fn] = (len(fn.body), schedule)
    return schedule


class ParallelExecutor:
    """Executes a scheduled CKKS-IR function with ``jobs`` worker threads.

    Args:
        backend: the :class:`~repro.backend.interface.HEBackend` issuing
            homomorphic ops; must satisfy the pure-op determinism and
            thread-safety contract for ``jobs > 1``.
        jobs: worker threads (None = ``REPRO_JOBS`` env, default 1).
        budget: optional shared :class:`JobBudget`; the executor acquires
            its thread count from the budget per run and releases it
            after, so concurrent executions cannot oversubscribe.
        watchdog_s: if set, the coordinator declares the execution
            stalled when *no* in-flight op completes for this long
            (a wedged kernel, a dead worker thread), raises the
            transient :class:`repro.errors.ExecutorStalledError`, and
            abandons the stuck threads without joining them — only this
            execution fails; the process keeps serving.
    """

    def __init__(self, backend, jobs: int | None = None,
                 budget: JobBudget | None = None,
                 watchdog_s: float | None = None,
                 mem_budget: int | None = None):
        self.backend = backend
        self.jobs = resolve_jobs(jobs)
        self.budget = budget
        self.watchdog_s = watchdog_s
        self.mem_budget = resolve_mem_budget(mem_budget)
        #: dispatch rounds this instance stopped issuing early because
        #: projected live bytes exceeded ``mem_budget``
        self.width_capped = 0

    # -- public API ---------------------------------------------------------

    def run(
        self,
        module: Module,
        fn: Function,
        inputs: list,
        check_plan: bool = True,
        region_tags: dict[int, str] | None = None,
        schedule: OpSchedule | None = None,
    ) -> list:
        """Execute ``fn``; bit-identical to the sequential interpreter."""
        # interpreter dispatch lives in ckks_interp; imported lazily to
        # keep the module dependency one-directional at import time
        from repro.runtime.ckks_interp import prepare_env

        env = prepare_env(fn, self.backend, inputs)
        if schedule is None:
            schedule = cached_schedule(fn)
        granted = self.budget.acquire(self.jobs) if self.budget else self.jobs
        try:
            if granted == 1:
                self._run_sequential(module, fn, env, schedule,
                                     check_plan, region_tags)
            else:
                self._run_parallel(module, fn, env, schedule,
                                   check_plan, region_tags, granted)
        finally:
            if self.budget:
                self.budget.release(granted)
        return [env[v.id] for v in fn.returns]

    # -- shared per-op machinery -------------------------------------------

    def _issue(self, module, op, args, tag, check_plan):
        """Evaluate one op (worker thread or sequential loop)."""
        from repro.runtime.ckks_interp import _check, _eval

        # every execution path (jobs=1 included) funnels through here,
        # making it the executor-level fault-injection point
        chaos.on_executor_op(op.opcode)
        trace = getattr(self.backend, "trace", None)
        if trace is not None and tag:
            with trace.region(tag):
                result = _eval(module, op, args, self.backend)
        else:
            result = _eval(module, op, args, self.backend)
        if check_plan and op.results[0].meta.get("scale") is not None:
            _check(op, result, self.backend)
        return result

    def _retire(self, fn, env, schedule, index, result, live) -> None:
        """Coordinator-side bookkeeping after op ``index`` completes."""
        op = fn.body[index]
        env[op.results[0].id] = result
        for vid in {operand.id for operand in op.operands}:
            remaining = live.get(vid)
            if remaining is None:
                continue
            if remaining <= 1:
                del live[vid]
                env.pop(vid, None)
            else:
                live[vid] = remaining - 1

    @staticmethod
    def _tag_for(op, index, region_tags) -> str | None:
        return (region_tags or {}).get(index) or op.attrs.get("region")

    # -- memory-aware dispatch bounding -------------------------------------

    @staticmethod
    def _value_bytes(value) -> int:
        """Resident bytes of one env value (exact or sim ciphertext)."""
        byte_size = getattr(value, "byte_size", None)
        if callable(byte_size):
            return byte_size()
        values = getattr(value, "values", None)
        nbytes = getattr(values, "nbytes", None)
        return int(nbytes) if nbytes is not None else 0

    def _live_bytes(self, env) -> int:
        return sum(self._value_bytes(value) for value in env.values())

    def _projected_result_bytes(self) -> int:
        """Figure-7 projection for one in-flight op's result.

        Conservative: a fresh 2-part ciphertext over the full modulus
        chain (``parts * (levels+1) * N * 8``).  Ops that rescale or
        return plaintext overshoot, which errs toward narrower width —
        the safe direction for a budget.
        """
        config = getattr(self.backend, "config", None)
        if config is None:
            return 0
        return 2 * (config.num_levels + 1) * config.poly_degree * 8

    def _may_dispatch(self, env, in_flight: int) -> bool:
        """Can one more op be issued without busting ``mem_budget``?

        The first op of a round always dispatches (progress guarantee);
        beyond that, live env bytes + a Figure-7 projection for every
        in-flight result (including the candidate) must fit.
        """
        if self.mem_budget is None or in_flight == 0:
            return True
        projected = (self._live_bytes(env)
                     + (in_flight + 1) * self._projected_result_bytes())
        if projected <= self.mem_budget:
            return True
        self.width_capped += 1
        _record_width_cap()
        return False

    # -- sequential (jobs=1) ------------------------------------------------

    def _run_sequential(self, module, fn, env, schedule, check_plan,
                        region_tags) -> None:
        live = dict(schedule.consumers)
        for index, op in enumerate(fn.body):
            args = [env[o.id] for o in op.operands]
            tag = self._tag_for(op, index, region_tags)
            result = self._issue(module, op, args, tag, check_plan)
            self._retire(fn, env, schedule, index, result, live)

    # -- parallel -----------------------------------------------------------

    def _run_parallel(self, module, fn, env, schedule, check_plan,
                      region_tags, jobs) -> None:
        body = fn.body
        live = dict(schedule.consumers)
        remaining_deps = [len(d) for d in schedule.deps]
        # within-wavefront dispatch follows program order (ready is seeded
        # and extended in index order), which keeps trace interleaving and
        # completion scanning deterministic-ish; results are order-free
        ready = [i for i, d in enumerate(remaining_deps) if d == 0]
        submitted = 0
        completed = 0
        # manual pool lifecycle (no ``with``): when the watchdog fires,
        # the stalled worker threads must be *abandoned*, not joined —
        # a ``with`` exit would block on them forever
        pool = ThreadPoolExecutor(max_workers=jobs,
                                  thread_name_prefix="repro-exec")
        pending = {}
        wait_on_exit = True
        try:
            while completed < len(body):
                while ready:
                    if not self._may_dispatch(env, len(pending)):
                        break  # memory budget: leftover ready ops wait
                    index = ready.pop(0)
                    op = body[index]
                    args = [env[o.id] for o in op.operands]
                    tag = self._tag_for(op, index, region_tags)
                    future = pool.submit(
                        self._issue, module, op, args, tag, check_plan
                    )
                    pending[future] = index
                    submitted += 1
                if not pending:
                    raise RuntimeBackendError(
                        "scheduler stalled: dependency cycle in op list"
                    )
                done, _ = wait(pending, return_when=FIRST_COMPLETED,
                               timeout=self.watchdog_s)
                if not done:
                    wait_on_exit = False
                    stuck = sorted(body[i].opcode for i in pending.values())
                    raise ExecutorStalledError(
                        f"watchdog: no op completed within "
                        f"{self.watchdog_s}s; abandoning {len(pending)} "
                        f"in-flight ops ({', '.join(stuck[:4])}...)"
                    )
                for future in done:
                    index = pending.pop(future)
                    result = future.result()  # re-raises op errors
                    self._retire(fn, env, schedule, index, result, live)
                    completed += 1
                    for user in schedule.users[index]:
                        remaining_deps[user] -= 1
                        if remaining_deps[user] == 0:
                            ready.append(user)
                    ready.sort()
        except BaseException:
            for future in pending:
                future.cancel()
            raise
        finally:
            pool.shutdown(wait=wait_on_exit, cancel_futures=True)
