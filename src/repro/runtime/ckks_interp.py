"""CKKS IR interpreter: strict execution of fully scheduled programs.

Unlike the SIHE interpreter, nothing here is managed on the fly: every
rescale/modswitch/relin/bootstrap was placed by the compiler, and this
interpreter simply issues the ops.  When the compiler annotated values
with expected scales/levels (``Value.meta``), the interpreter verifies
the runtime state matches the plan — a strong check on the
scale-management pass.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backend.interface import HEBackend
from repro.errors import RuntimeBackendError
from repro.ir.core import Function, Module
from repro.ir.types import CipherType
from repro.runtime.vector_interp import _eval as eval_vector_op


def run_ckks_function(
    module: Module,
    fn: Function,
    backend: HEBackend,
    inputs: list,
    check_plan: bool = True,
    region_tags: dict[int, str] | None = None,
) -> list:
    """Execute a CKKS-IR function.

    Args:
        region_tags: optional map op-index -> tag; ops are recorded under
            that tag in the backend trace (feeds Figure 6's breakdown).
    """
    be = backend
    env: dict[int, object] = {}
    for param, value in zip(fn.params, inputs):
        if isinstance(param.type, CipherType):
            if isinstance(value, np.ndarray) or np.isscalar(value):
                handle = be.encrypt(value)
            else:
                handle = value  # already a ciphertext (Figure-2 protocol)
        else:
            handle = np.asarray(value, dtype=np.float64)
        env[param.id] = handle
    # liveness: drop intermediates after their last use (an encrypted
    # ResNet otherwise accumulates gigabytes of dead ciphertexts)
    last_use: dict[int, int] = {}
    for index, op in enumerate(fn.body):
        for operand in op.operands:
            last_use[operand.id] = index
    keep = {v.id for v in fn.returns}
    trace = getattr(be, "trace", None)
    for index, op in enumerate(fn.body):
        args = [env[o.id] for o in op.operands]
        tag = (region_tags or {}).get(index) or op.attrs.get("region")
        if trace is not None and tag:
            with trace.region(tag):
                result = _eval(module, op, args, be)
        else:
            result = _eval(module, op, args, be)
        env[op.results[0].id] = result
        if check_plan and op.results[0].meta.get("scale") is not None:
            _check(op, result, be)
        for operand in op.operands:
            if last_use.get(operand.id) == index and operand.id not in keep:
                env.pop(operand.id, None)
    return [env[v.id] for v in fn.returns]


def _check(op, result, be) -> None:
    meta = op.results[0].meta
    if isinstance(result, np.ndarray):
        return
    got_scale = be.scale_of(result)
    want_scale = meta["scale"]
    if not math.isclose(got_scale, want_scale, rel_tol=1e-5):
        raise RuntimeBackendError(
            f"{op.opcode}: runtime scale 2^{math.log2(got_scale):.3f} != "
            f"planned 2^{math.log2(want_scale):.3f}"
        )
    want_level = meta.get("level")
    if want_level is not None and be.level_of(result) != want_level:
        raise RuntimeBackendError(
            f"{op.opcode}: runtime level {be.level_of(result)} != planned "
            f"{want_level}"
        )


def _eval(module: Module, op, args, be: HEBackend):
    code = op.opcode
    if code.startswith("vector."):
        return eval_vector_op(module, op, args)
    if code == "ckks.rotate":
        return be.rotate(args[0], op.attrs["steps"])
    if code == "ckks.conjugate":
        return be.conjugate(args[0])
    if code == "ckks.add":
        if isinstance(args[1], np.ndarray) or _is_plain(op, 1):
            return be.add_plain(args[0], args[1])
        return be.add(args[0], args[1])
    if code == "ckks.sub":
        if _is_plain(op, 1):
            return be.sub_plain(args[0], args[1])
        return be.sub(args[0], args[1])
    if code == "ckks.neg":
        return be.negate(args[0])
    if code == "ckks.mul":
        if _is_plain(op, 1):
            return be.mul_plain(args[0], args[1])
        return be.mul(args[0], args[1])
    if code == "ckks.relin":
        return be.relinearize(args[0])
    if code == "ckks.rescale":
        return be.rescale(args[0])
    if code == "ckks.modswitch":
        return be.mod_switch(args[0], op.attrs.get("levels", 1))
    if code == "ckks.upscale":
        return be.upscale(args[0], op.attrs["bits"])
    if code == "ckks.downscale":
        target = op.attrs["target_scale"]
        out = args[0]
        while be.scale_of(out) > target * (1 + 1e-6) and be.level_of(out) > 0:
            out = be.rescale(out)
        return out
    if code == "ckks.bootstrap":
        return be.bootstrap(args[0], op.attrs.get("target_level"))
    if code == "ckks.encode":
        return be.encode(args[0], scale=op.attrs["scale"],
                         level=op.attrs["level"])
    if code == "ckks.decode":
        return args[0]
    raise RuntimeBackendError(f"CKKS interpreter: unsupported op {code}")


def _is_plain(op, index: int) -> bool:
    from repro.ir.types import PlainType

    return isinstance(op.operands[index].type, PlainType)
