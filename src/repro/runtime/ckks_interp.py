"""CKKS IR interpreter: strict execution of fully scheduled programs.

Unlike the SIHE interpreter, nothing here is managed on the fly: every
rescale/modswitch/relin/bootstrap was placed by the compiler, and this
interpreter simply issues the ops.  When the compiler annotated values
with expected scales/levels (``Value.meta``), the interpreter verifies
the runtime state matches the plan — a strong check on the
scale-management pass.

Op *issue* is delegated to :class:`repro.runtime.executor.ParallelExecutor`:
the classic sequential walk is the ``jobs=1`` case of the same
dependency-DAG scheduler, and ``jobs > 1`` dispatches independent ops
(parallel residual branches, BSGS giant steps) onto a thread pool with
bit-identical results.  This module keeps the per-op dispatch table
(:func:`_eval`) and the plan check (:func:`_check`).
"""

from __future__ import annotations

import hashlib
import math
import threading
import weakref

import numpy as np

from repro.backend.interface import HEBackend
from repro.errors import RuntimeBackendError
from repro.ir.core import Function, Module
from repro.ir.types import CipherType
from repro.runtime.vector_interp import _eval as eval_vector_op

#: per-backend plaintext-encode memo, keyed by (payload digest, dtype,
#: shape, scale, level).  Constant payloads are encoded at whatever
#: (scale, level) the compiled plan asks for; with the level replanner
#: in the pipeline the same payload recurs across functions, batches and
#: serve requests, and NTT-encoding it again is pure waste — plaintexts
#: are immutable on every backend (``multiply_plain`` never writes its
#: plaintext operand) and encoding is deterministic, so sharing the
#: handle is bit-safe.  WeakKeyDictionary ties each cache's lifetime to
#: its backend (dropping a backend drops its plaintexts); the lock keeps
#: the parallel executor's worker threads consistent.
_ENCODE_CACHES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_ENCODE_LOCK = threading.Lock()
_ENCODE_CACHE_MAX = 4096  # entries per backend; cleared wholesale past this


def _cached_encode(be: HEBackend, payload, scale, level):
    if not isinstance(payload, np.ndarray):
        return be.encode(payload, scale=scale, level=level)
    key = (
        hashlib.sha1(payload.tobytes()).digest(),
        payload.dtype.str,
        payload.shape,
        float(scale),
        int(level),
    )
    with _ENCODE_LOCK:
        cache = _ENCODE_CACHES.get(be)
        if cache is None:
            cache = {}
            _ENCODE_CACHES[be] = cache
        hit = cache.get(key)
    if hit is not None:
        return hit
    plaintext = be.encode(payload, scale=scale, level=level)
    with _ENCODE_LOCK:
        if len(cache) >= _ENCODE_CACHE_MAX:
            cache.clear()
        cache[key] = plaintext
    return plaintext


def prepare_env(fn: Function, backend: HEBackend, inputs: list) -> dict[int, object]:
    """Bind inputs to parameter value ids (encrypting cleartext ciphers).

    Runs on the calling thread before any parallel dispatch, so
    encryption randomness is drawn in parameter order regardless of the
    job count.
    """
    env: dict[int, object] = {}
    for param, value in zip(fn.params, inputs):
        if isinstance(param.type, CipherType):
            if isinstance(value, np.ndarray) or np.isscalar(value):
                handle = backend.encrypt(value)
            else:
                handle = value  # already a ciphertext (Figure-2 protocol)
        else:
            handle = np.asarray(value, dtype=np.float64)
        env[param.id] = handle
    return env


def run_ckks_function(
    module: Module,
    fn: Function,
    backend: HEBackend,
    inputs: list,
    check_plan: bool = True,
    region_tags: dict[int, str] | None = None,
    jobs: int | None = None,
    budget=None,
    watchdog_s: float | None = None,
) -> list:
    """Execute a CKKS-IR function.

    Args:
        region_tags: optional map op-index -> tag; ops are recorded under
            that tag in the backend trace (feeds Figure 6's breakdown).
        jobs: worker threads for op-level parallelism (None resolves the
            ``REPRO_JOBS`` environment variable, default 1).  Results are
            bit-identical at every job count.
        budget: optional shared :class:`repro.runtime.executor.JobBudget`
            capping total threads across concurrent executions.
        watchdog_s: optional stall bound for parallel execution; see
            :class:`repro.runtime.executor.ParallelExecutor`.
    """
    from repro.runtime.executor import ParallelExecutor

    executor = ParallelExecutor(backend, jobs=jobs, budget=budget,
                                watchdog_s=watchdog_s)
    return executor.run(
        module, fn, inputs, check_plan=check_plan, region_tags=region_tags
    )


def _check(op, result, be) -> None:
    meta = op.results[0].meta
    if isinstance(result, np.ndarray):
        return
    got_scale = be.scale_of(result)
    want_scale = meta["scale"]
    if not math.isclose(got_scale, want_scale, rel_tol=1e-5):
        raise RuntimeBackendError(
            f"{op.opcode}: runtime scale 2^{math.log2(got_scale):.3f} != "
            f"planned 2^{math.log2(want_scale):.3f}"
        )
    want_level = meta.get("level")
    if want_level is not None and be.level_of(result) != want_level:
        raise RuntimeBackendError(
            f"{op.opcode}: runtime level {be.level_of(result)} != planned "
            f"{want_level}"
        )


def _eval(module: Module, op, args, be: HEBackend):
    code = op.opcode
    if code.startswith("vector."):
        return eval_vector_op(module, op, args)
    if code == "ckks.rotate":
        return be.rotate(args[0], op.attrs["steps"])
    if code == "ckks.conjugate":
        return be.conjugate(args[0])
    if code == "ckks.add":
        if isinstance(args[1], np.ndarray) or _is_plain(op, 1):
            return be.add_plain(args[0], args[1])
        return be.add(args[0], args[1])
    if code == "ckks.sub":
        if _is_plain(op, 1):
            return be.sub_plain(args[0], args[1])
        return be.sub(args[0], args[1])
    if code == "ckks.neg":
        return be.negate(args[0])
    if code == "ckks.mul":
        if _is_plain(op, 1):
            return be.mul_plain(args[0], args[1])
        return be.mul(args[0], args[1])
    if code == "ckks.relin":
        return be.relinearize(args[0])
    if code == "ckks.rescale":
        return be.rescale(args[0])
    if code == "ckks.modswitch":
        return be.mod_switch(args[0], op.attrs.get("levels", 1))
    if code == "ckks.upscale":
        return be.upscale(args[0], op.attrs["bits"])
    if code == "ckks.downscale":
        target = op.attrs["target_scale"]
        out = args[0]
        while be.scale_of(out) > target * (1 + 1e-6) and be.level_of(out) > 0:
            out = be.rescale(out)
        return out
    if code == "ckks.bootstrap":
        giant = op.attrs.get("bsgs_giant")
        if giant is not None:
            return be.bootstrap(args[0], op.attrs.get("target_level"),
                                bsgs_giant=giant)
        return be.bootstrap(args[0], op.attrs.get("target_level"))
    if code == "ckks.encode":
        return _cached_encode(be, args[0], op.attrs["scale"],
                              op.attrs["level"])
    if code == "ckks.decode":
        return args[0]
    raise RuntimeBackendError(f"CKKS interpreter: unsupported op {code}")


def _is_plain(op, index: int) -> bool:
    from repro.ir.types import PlainType

    return isinstance(op.operands[index].type, PlainType)
