"""SIHE IR interpreter: scheme-independent execution on any backend.

The SIHE level has no scale/level management (that is CKKS IR's job), so
this interpreter manages scales *greedily*: every multiplication is
followed by relinearise+rescale, operands are aligned on demand, and a
bootstrap fires automatically when the level budget runs dry.  It exists
for differential testing of the SIHE lowering before the CKKS passes run.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backend.interface import HEBackend
from repro.errors import RuntimeBackendError
from repro.ir.core import Function, Module
from repro.ir.types import CipherType
from repro.runtime.vector_interp import _eval as eval_vector_op


class SiheInterpreter:
    def __init__(self, backend: HEBackend, auto_bootstrap: bool = True):
        self.backend = backend
        self.auto_bootstrap = auto_bootstrap

    def run(self, module: Module, fn: Function, inputs: list) -> list:
        be = self.backend
        env: dict[int, object] = {}
        for param, value in zip(fn.params, inputs):
            if isinstance(param.type, CipherType):
                env[param.id] = be.encrypt(value)
            else:
                env[param.id] = np.asarray(value, dtype=np.float64)
        last_use: dict[int, int] = {}
        for index, op in enumerate(fn.body):
            for operand in op.operands:
                last_use[operand.id] = index
        keep = {v.id for v in fn.returns}
        for index, op in enumerate(fn.body):
            args = [env[o.id] for o in op.operands]
            env[op.results[0].id] = self._eval(module, op, args)
            for operand in op.operands:
                if (last_use.get(operand.id) == index
                        and operand.id not in keep):
                    env.pop(operand.id, None)
        return [env[v.id] for v in fn.returns]

    # -- helpers ----------------------------------------------------------

    def _ensure_budget(self, c, needed: int = 1):
        be = self.backend
        if be.level_of(c) < needed and self.auto_bootstrap:
            return be.bootstrap(c)
        return c

    def _encode_for(self, raw: np.ndarray, c):
        be = self.backend
        return be.encode(raw, scale=be.config.scale, level=be.level_of(c))

    def _mul_plain_rescaled(self, c, raw):
        be = self.backend
        c = self._ensure_budget(c)
        prod = be.mul_plain(c, self._encode_for(raw, c))
        return be.rescale(prod)

    def _align_pair(self, a, b):
        """Bring two ciphertexts to a common level and equal scale."""
        be = self.backend
        level = min(be.level_of(a), be.level_of(b))
        a = be.mod_switch_to(a, level)
        b = be.mod_switch_to(b, level)
        sa, sb = be.scale_of(a), be.scale_of(b)
        if math.isclose(sa, sb, rel_tol=1e-6):
            return a, b
        # multiply the lower-scaled operand by ones at a compensating
        # scale, then rescale both to land on a common value
        target = max(sa, sb)
        low, high = (a, b) if sa < sb else (b, a)
        prime = be.prime_at(be.level_of(low))
        ones_scale = target * prime / be.scale_of(low)
        ones = be.encode(
            np.ones(be.config.num_slots), scale=ones_scale,
            level=be.level_of(low),
        )
        low = be.rescale(be.mul_plain(low, ones))
        high = be.mod_switch_to(high, be.level_of(low))
        # after the rescale low's scale == target * prime / prime == target
        if sa < sb:
            return low, high
        return high, low

    # -- op dispatch ----------------------------------------------------------

    def _eval(self, module: Module, op, args):
        code = op.opcode
        be = self.backend
        if code.startswith("vector."):
            return eval_vector_op(module, op, args)
        if code == "sihe.rotate":
            return be.rotate(args[0], op.attrs["steps"])
        if code == "sihe.neg":
            return be.negate(args[0])
        if code == "sihe.encode":
            return np.asarray(args[0])  # stays raw until consumed
        if code == "sihe.decode":
            return np.asarray(args[0])
        if code == "sihe.bootstrap_hint":
            return be.bootstrap(args[0]) if self.auto_bootstrap else args[0]
        if code in ("sihe.add", "sihe.sub", "sihe.mul"):
            a, b = args
            cipher_b = not isinstance(b, np.ndarray)
            if code == "sihe.mul":
                if cipher_b:
                    a, b = self._align_pair(self._ensure_budget(a),
                                            self._ensure_budget(b))
                    return be.rescale(be.relinearize(be.mul(a, b)))
                return self._mul_plain_rescaled(a, b)
            if cipher_b:
                a, b = self._align_pair(a, b)
                return be.add(a, b) if code == "sihe.add" else be.sub(a, b)
            plain = be.encode(b, scale=be.scale_of(a), level=be.level_of(a))
            return (
                be.add_plain(a, plain)
                if code == "sihe.add"
                else be.sub_plain(a, plain)
            )
        raise RuntimeBackendError(f"SIHE interpreter: unsupported op {code}")


def run_sihe_function(module: Module, fn: Function, backend: HEBackend,
                      inputs: list) -> list:
    return SiheInterpreter(backend).run(module, fn, inputs)
