"""VECTOR IR interpreter: packed cleartext execution with numpy."""

from __future__ import annotations

import numpy as np

from repro.errors import RuntimeBackendError
from repro.ir.core import Function, Module


def run_vector_function(module: Module, fn: Function,
                        inputs: list[np.ndarray]):
    env: dict[int, np.ndarray] = {}
    for param, value in zip(fn.params, inputs):
        vec = np.zeros(param.type.length)
        flat = np.asarray(value, dtype=np.float64).ravel()
        vec[: flat.size] = flat
        env[param.id] = vec
    last_use: dict[int, int] = {}
    for index, op in enumerate(fn.body):
        for operand in op.operands:
            last_use[operand.id] = index
    keep = {v.id for v in fn.returns}
    for index, op in enumerate(fn.body):
        args = [env[o.id] for o in op.operands]
        env[op.results[0].id] = _eval(module, op, args)
        for operand in op.operands:
            if last_use.get(operand.id) == index and operand.id not in keep:
                env.pop(operand.id, None)
    return [env[v.id] for v in fn.returns]


def _eval(module: Module, op, args):
    code = op.opcode
    if code == "vector.constant":
        const = module.constants[op.attrs["const_name"]]
        vec = np.zeros(op.results[0].type.length)
        vec[: const.size] = const.ravel()
        return vec
    if code == "vector.add":
        return args[0] + args[1]
    if code == "vector.mul":
        return args[0] * args[1]
    if code == "vector.roll":
        return np.roll(args[0], -op.attrs["steps"])
    if code == "vector.slice":
        start = op.attrs.get("start", 0)
        return args[0][start : start + op.attrs["size"]].copy()
    if code == "vector.pad":
        out = np.zeros(op.attrs["length"])
        out[: args[0].size] = args[0]
        return out
    if code == "vector.tile":
        return np.tile(args[0], op.attrs["count"])
    if code == "vector.broadcast":
        out = np.empty(op.attrs["length"])
        out[:] = np.resize(args[0], op.attrs["length"])
        return out
    if code == "vector.reshape":
        return args[0]
    if code == "vector.relu":
        return np.maximum(args[0], 0.0)
    if code == "vector.nonlinear":
        from repro.passes.approx import APPROXIMATIONS

        return APPROXIMATIONS[op.attrs["kind"]].fn(args[0])
    raise RuntimeBackendError(f"VECTOR interpreter: unsupported op {code}")
