"""POLY IR interpreter: executes RNS polynomial programs on real keys.

The lowest-level execution path: a materialised POLY IR function (from
:func:`repro.passes.lowering.ckks_to_poly.materialize_poly_function`)
runs directly against :class:`RnsPoly` arithmetic and the key material of
an exact CKKS context — NTTs, digit decomposition, base extension and
mod-down all happen explicitly, exactly as the generated C would drive
ACEfhe.  Differential testing POLY-vs-CKKS closes the loop across all
five IR levels.
"""

from __future__ import annotations

import numpy as np

from repro.backend.exact import ExactBackend
from repro.errors import RuntimeBackendError
from repro.ir.core import Function, Module
from repro.polymath.rns import RnsPoly


class PolyInterpreter:
    """Executes a POLY IR function with an exact backend's keys."""

    def __init__(self, backend: ExactBackend, module: Module):
        self.backend = backend
        self.module = module
        self.ev = backend.ev

    # -- helpers ------------------------------------------------------------

    def _encode_const(self, op) -> RnsPoly:
        name = op.attrs["const_name"]
        scale = op.attrs.get("scale")
        level = op.attrs.get("level", op.attrs["limbs"] - 1)
        if name in self.module.constants and scale is not None:
            values = self.module.constants[name]
            plain = self.ev.encode(np.asarray(values, dtype=np.float64),
                                   scale=scale, level=level)
            return plain.poly
        raise RuntimeBackendError(
            f"poly.constant {name!r} has no recoverable payload"
        )

    def _load_key(self, op) -> RnsPoly:
        key = op.attrs["key"]
        digit = op.attrs["digit"]
        part = op.attrs["part"]
        limbs = op.attrs["limbs"]
        if key == "relin":
            ksk = self.backend.ctx.keys.relin
        elif key == "conj":
            ksk = self.backend.ctx.keys.conjugation
        elif key.startswith("rot_"):
            galois = int(key[4:])
            ksk = self.backend.ctx.keys.rotation_key(galois)
        else:
            raise RuntimeBackendError(f"unknown key {key!r}")
        poly = ksk.pairs[digit][part]
        level = limbs - 1 - self.ev.params.num_special_primes
        return self.ev._restrict_key_poly(poly, level)

    # -- execution --------------------------------------------------------------

    def run(self, fn: Function, cipher_inputs: list) -> list[RnsPoly]:
        """``cipher_inputs``: one Ciphertext per *pair* of poly params."""
        env: dict[int, RnsPoly] = {}
        index = 0
        for ct in cipher_inputs:
            for part in ct.parts:
                env[fn.params[index].id] = part
                index += 1
        if index != len(fn.params):
            raise RuntimeBackendError("wrong number of cipher inputs")
        for op in fn.body:
            args = [env[o.id] for o in op.operands]
            env[op.results[0].id] = self._eval(op, args)
        return [env[v.id] for v in fn.returns]

    def _eval(self, op, args):
        code = op.opcode
        if code == "poly.constant":
            return self._encode_const(op)
        if code == "poly.load_key":
            return self._load_key(op)
        if code == "poly.add":
            return args[0] + args[1]
        if code == "poly.sub":
            return args[0] - args[1]
        if code == "poly.neg":
            return -args[0]
        if code == "poly.mul":
            return args[0] * args[1]
        if code == "poly.muladd":
            return args[0] * args[1] + args[2]
        if code == "poly.rescale":
            return args[0].rescale_last()
        if code == "poly.mod_drop":
            return args[0].drop_last(op.attrs.get("count", 1))
        if code == "poly.mod_down":
            return args[0].mod_down(op.attrs["count"])
        if code == "poly.automorphism":
            return args[0].automorphism(op.attrs["galois"])
        if code == "poly.ntt":
            return args[0].to_ntt()
        if code == "poly.intt":
            return args[0].to_coeff()
        if code == "poly.decomp_modup":
            digit = op.attrs["digit"]
            cipher_level = len(args[0].basis) - 1
            ext = self.ev._extended_basis(cipher_level)
            return args[0].decompose_digit(digit, ext)
        if code == "poly.decomp":
            digit = op.attrs["digit"]
            return args[0].decompose_digit(digit, args[0].basis.prefix(1))
        if code == "poly.mod_up":
            # digit already small: reduce into the extended basis
            cipher_level = op.attrs["limbs"] - 1 - \
                self.ev.params.num_special_primes
            ext = self.ev._extended_basis(cipher_level)
            return args[0].decompose_digit(0, ext)
        raise RuntimeBackendError(f"POLY interpreter: unsupported op {code}")


def run_poly_function(backend: ExactBackend, module: Module, fn: Function,
                      cipher_inputs: list) -> list[RnsPoly]:
    return PolyInterpreter(backend, module).run(fn, cipher_inputs)
