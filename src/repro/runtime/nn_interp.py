"""NN IR interpreter: executes tensor ops with the numpy reference kernels.

This is also how ANT-ACE's instrumentation supports *unencrypted*
inference for debugging (paper §5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import RuntimeBackendError
from repro.ir.core import Function, Module
from repro.nn import functional as F


def run_nn_function(module: Module, fn: Function, inputs: list[np.ndarray],
                    observer=None):
    """Execute; ``observer(op, args, result)`` is called per op when given
    (used by the compiler's range-calibration pass)."""
    env: dict[int, np.ndarray] = {}
    for param, value in zip(fn.params, inputs):
        env[param.id] = np.asarray(value, dtype=np.float64).reshape(
            param.type.shape
        )
    for op in fn.body:
        args = [env[o.id] for o in op.operands]
        result = _eval(module, op, args)
        env[op.results[0].id] = result
        if observer is not None:
            observer(op, args, result)
    return [env[v.id] for v in fn.returns]


def _eval(module: Module, op, args):
    code = op.opcode
    if code == "nn.constant":
        return module.constants[op.attrs["const_name"]]
    if code == "nn.conv":
        return F.conv2d(args[0], args[1], args[2],
                        op.attrs.get("stride", 1),
                        op.attrs.get("pad", args[1].shape[2] // 2))
    if code == "nn.gemm":
        return F.gemm(args[0], args[1], args[2],
                      trans_b=op.attrs.get("trans_b", False))
    if code == "nn.relu":
        return F.relu(args[0])
    if code in ("nn.sigmoid", "nn.tanh", "nn.exp", "nn.gelu"):
        from repro.passes.approx import APPROXIMATIONS

        return APPROXIMATIONS[code.split(".")[1]].fn(args[0])
    if code == "nn.add":
        return args[0] + args[1]
    if code == "nn.average_pool":
        return F.avg_pool2d(args[0], op.attrs["kernel"],
                            op.attrs.get("stride"))
    if code == "nn.global_average_pool":
        return F.global_avg_pool(args[0])
    if code == "nn.flatten":
        return F.flatten(args[0], op.attrs.get("axis", 1))
    if code == "nn.reshape":
        return args[0].reshape(op.attrs["shape"])
    if code == "nn.strided_slice":
        return F.strided_slice(args[0], op.attrs["starts"],
                               op.attrs["sizes"], op.attrs["strides"])
    raise RuntimeBackendError(f"NN interpreter: unsupported op {code}")
