"""Interpreters for every IR level.

Differential execution across levels is the compiler's correctness story:
a model is run at NN, VECTOR, SIHE, CKKS and POLY levels and all outputs
must agree (within CKKS precision on encrypted levels).
"""

from repro.runtime.nn_interp import run_nn_function
from repro.runtime.vector_interp import run_vector_function
from repro.runtime.sihe_interp import run_sihe_function
from repro.runtime.ckks_interp import run_ckks_function
from repro.runtime.poly_interp import run_poly_function
from repro.runtime.executor import JobBudget, ParallelExecutor, resolve_jobs

__all__ = [
    "run_nn_function",
    "run_vector_function",
    "run_sihe_function",
    "run_ckks_function",
    "run_poly_function",
    "JobBudget",
    "ParallelExecutor",
    "resolve_jobs",
]
