"""Legacy setup shim.

The evaluation environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs are unavailable; this file lets
``pip install -e .`` fall back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Pure-Python reproduction of ANT-ACE: an FHE compiler framework "
        "for automating neural network inference (CGO 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
