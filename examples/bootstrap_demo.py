"""CKKS bootstrapping on real keys (paper §2.1, §4.4).

Encrypts a message, burns through the whole modulus chain with repeated
multiplications, bootstraps (ModRaise -> CoeffToSlot -> EvalMod ->
SlotToCoeff), and keeps computing — demonstrating the noise-refresh path
that makes unbounded-depth inference possible, including the
minimal-target-level knob ANT-ACE's bootstrap placement exploits.

Run:  python examples/bootstrap_demo.py   (about a minute)
"""

import time

import numpy as np

from repro.ckks import CkksContext, CkksParameters


def main() -> None:
    params = CkksParameters(
        poly_degree=64,
        scale_bits=25,
        first_prime_bits=26,
        num_levels=22,
        secret_hamming_weight=8,
    )
    ctx = CkksContext(params, rotation_steps=[], seed=1)
    print(f"context: N={params.poly_degree}, {params.num_levels} levels, "
          f"log2(Q)={params.log_q()}")
    bootstrapper = ctx.make_bootstrapper()
    print(f"bootstrap circuit depth: {bootstrapper.depth} levels, "
          f"default target level {bootstrapper.target_level}")

    rng = np.random.default_rng(2)
    msg = rng.uniform(-0.25, 0.25, size=params.num_slots)
    ct = ctx.encrypt(msg, level=0)
    print(f"ciphertext at level {ct.level} (exhausted — cannot multiply)")

    t0 = time.perf_counter()
    refreshed = bootstrapper.bootstrap(ct)
    print(f"bootstrapped to level {refreshed.level} "
          f"in {time.perf_counter() - t0:.1f}s")
    err = np.abs(ctx.decrypt(refreshed, params.num_slots) - msg).max()
    print(f"refresh error: {err:.2e}")

    sq = ctx.evaluator.rescale(
        ctx.evaluator.multiply_relin(refreshed, refreshed)
    )
    err_sq = np.abs(ctx.decrypt(sq, params.num_slots) - msg**2).max()
    print(f"post-refresh squaring error: {err_sq:.2e}")

    # minimal-level refresh (ANT-ACE's optimisation lever, §4.4)
    minimal = ctx.make_bootstrapper(target_level=1)
    t0 = time.perf_counter()
    low = minimal.bootstrap(ctx.encrypt(msg, level=0))
    print(f"minimal-target bootstrap -> level {low.level} "
          f"in {time.perf_counter() - t0:.1f}s")


if __name__ == "__main__":
    main()
