"""Tour of the five IR levels using the paper's Figure-4 model (§4.1-4.5).

Prints the linear_infer model at every abstraction level — NN, VECTOR,
SIHE, CKKS — plus the POLY-IR expansion and the generated C-like and
Python sources, with the line counts §4.5 discusses.

Run:  python examples/linear_infer_ir_tour.py
"""

import numpy as np

from repro.backend.interface import SchemeConfig
from repro.codegen import generate_c_like, generate_python
from repro.compiler import ACECompiler, CompileOptions
from repro.ir import print_function
from repro.onnx import OnnxGraphBuilder, load_model_bytes, model_to_bytes
from repro.passes.frontend import onnx_to_nn
from repro.passes.lowering.ckks_to_poly import materialize_poly_function
from repro.passes.lowering.nn_to_vector import NnToVectorLowering
from repro.passes.lowering.vector_to_sihe import VectorToSiheLowering


def build_model():
    rng = np.random.default_rng(7)
    builder = OnnxGraphBuilder("linear_infer")
    builder.add_input("image", [1, 84])
    builder.add_initializer(
        "fc.weight", rng.normal(size=(10, 84)).astype(np.float32))
    builder.add_initializer("fc.bias", rng.normal(size=(10,)).astype(np.float32))
    builder.add_node("Gemm", ["image", "fc.weight", "fc.bias"],
                     outputs=["output"], transB=1)
    builder.add_output("output", [1, 10])
    return load_model_bytes(model_to_bytes(builder.build()))


def banner(title):
    print("\n" + "=" * 70)
    print(title)
    print("=" * 70)


def main() -> None:
    model = build_model()

    banner("NN IR (Listing 1)")
    module = onnx_to_nn(model)
    print(print_function(module.main()))

    banner("VECTOR IR (Listing 2) — first 15 ops")
    NnToVectorLowering(slots=128).run(module, {})
    print("\n".join(print_function(module.main()).splitlines()[:16]))
    print(f"... {module.main().op_count()} ops total, "
          f"{module.main().op_count('vector.roll')} rolls")

    banner("SIHE IR (Listing 3) — first 15 ops")
    VectorToSiheLowering().run(module, {})
    print("\n".join(print_function(module.main()).splitlines()[:16]))
    print(f"... {module.main().op_count()} ops total")

    banner("CKKS IR (Listing 4) + POLY expansion (§4.5)")
    program = ACECompiler(build_model(),
                          CompileOptions(poly_mode="full")).compile()
    ckks_lines = program.dump_ir().splitlines()
    print("\n".join(ckks_lines[:14]))
    print(f"... {program.stats['ckks_ops']} CKKS ops")
    poly_lines = program.stats["poly"]["poly_ir_lines"]
    print(f"POLY IR: {poly_lines} ops "
          f"(paper quotes 331 lines for its gemv example)")

    banner("Generated C-like code (first 20 lines)")
    poly_fn = program.module.functions["main_poly"]
    c_src = generate_c_like(poly_fn)
    print("\n".join(c_src.splitlines()[:20]))
    n_c = sum(1 for line in c_src.splitlines() if line.strip())
    print(f"... {n_c} non-empty C lines")

    banner("Generated Python (first 15 lines) — executable")
    py_src = generate_python(program.module)
    print("\n".join(py_src.splitlines()[:15]))
    print(f"... {len(py_src.splitlines())} lines")


if __name__ == "__main__":
    main()
