"""Quickstart: compile an ONNX model and run encrypted inference.

Builds a small linear model (the paper's Figure-4 `linear_infer`), saves
it as a real .onnx file, compiles it with the ANT-ACE reproduction, and
runs it on both backends:

* the simulation backend (paper-fidelity parameters, N = 2^14+),
* the exact RNS-CKKS backend (real keys, real polynomials).

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.ckks import CkksParameters
from repro.compiler import ACECompiler, CompileOptions
from repro.onnx import OnnxGraphBuilder, load_model, save_model


def build_linear_infer(rng) -> "OnnxGraphBuilder":
    builder = OnnxGraphBuilder("linear_infer")
    builder.add_input("image", [1, 84])
    builder.add_initializer(
        "fc.weight", (rng.normal(size=(10, 84)) * 0.3).astype(np.float32)
    )
    builder.add_initializer(
        "fc.bias", rng.normal(size=(10,)).astype(np.float32)
    )
    builder.add_node("Gemm", ["image", "fc.weight", "fc.bias"],
                     outputs=["output"], transB=1)
    builder.add_output("output", [1, 10])
    return builder


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. produce and reload a real ONNX file (no onnx package involved)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "linear_infer.onnx"
        save_model(build_linear_infer(rng).build(), path)
        model = load_model(path)
        print(f"loaded {path.name}: "
              f"{[n.op_type for n in model.graph.node]} nodes")

    # 2. compile
    program = ACECompiler(model, CompileOptions(poly_mode="stats")).compile()
    print("auto-selected parameters:", program.selection.table10_row())
    print(f"compiled to {program.stats['ckks_ops']} CKKS ops, "
          f"{program.stats['rotations']} rotation keys required")

    # 3. run on the simulation backend
    x = rng.normal(size=(1, 84))
    weights = {t.name: t.to_numpy() for t in model.graph.initializer}
    expected = (x @ weights["fc.weight"].T + weights["fc.bias"]).ravel()
    sim = program.make_sim_backend(seed=1)
    got_sim = program.run(sim, x)[0]
    print(f"sim backend   max |err| = {np.abs(got_sim - expected).max():.2e}")

    # 4. run on the exact backend with real keys (recompiled against its
    #    real prime chain so the scale plan matches bit-for-bit)
    params = CkksParameters(poly_degree=256, scale_bits=30,
                            first_prime_bits=40, num_levels=4)
    exact_prog = ACECompiler(
        model,
        CompileOptions(exact_params=params, bootstrap_enabled=False,
                       poly_mode="off"),
    ).compile()
    exact = exact_prog.make_exact_backend(params, seed=2)
    got_exact = exact_prog.run(exact, x)[0]
    print(f"exact backend max |err| = {np.abs(got_exact - expected).max():.2e}")
    print("quickstart OK")


if __name__ == "__main__":
    main()
