"""ONNX without the onnx package: build, save, reload, execute.

Demonstrates the from-scratch protobuf wire-format substrate: a ResNet is
exported to a real ``.onnx`` file, parsed back, imported into the NN IR
and executed with the reference interpreter.

Run:  python examples/onnx_roundtrip.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.nn import model_to_onnx, resnet_mini
from repro.onnx import load_model, save_model
from repro.passes.frontend import onnx_to_nn
from repro.runtime import run_nn_function


def main() -> None:
    model = resnet_mini(num_classes=4, in_channels=1, base_width=4,
                        input_size=8, blocks=2, seed=0)
    proto = model_to_onnx(model)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "resnet_mini.onnx"
        save_model(proto, path)
        size = path.stat().st_size
        print(f"wrote {path.name}: {size} bytes")
        reloaded = load_model(path)
    ops = [n.op_type for n in reloaded.graph.node]
    print(f"graph: {len(ops)} nodes "
          f"({', '.join(sorted(set(ops)))})")
    print(f"initializers: {len(reloaded.graph.initializer)} tensors")

    module = onnx_to_nn(reloaded)
    rng = np.random.default_rng(1)
    image = rng.normal(size=(1, 1, 8, 8))
    via_onnx = run_nn_function(module, module.main(), [image])[0]
    direct = model.forward(image)
    err = np.abs(via_onnx - direct).max()
    print(f"NN-IR interpreter vs direct model: max |err| = {err:.2e}")
    assert err < 1e-5  # ONNX stores weights as float32
    print("onnx roundtrip OK")


if __name__ == "__main__":
    main()
