"""The Figure-2 threat-model protocol, end to end on real crypto.

A *client* holds the secret key; an untrusted *server* holds only the
compiled program, the evaluation keys and the model weights.  The client
encrypts an input and ships serialized ciphertext bytes; the server runs
encrypted inference and ships bytes back; the client decrypts.  The
server never observes the plaintext.

Run:  python examples/client_server_protocol.py
"""

import numpy as np

from repro.ckks import CkksParameters
from repro.ckks.serialize import deserialize_ciphertext, serialize_ciphertext
from repro.compiler import ACECompiler, CompileOptions
from repro.compiler.artifacts import client_tools
from repro.onnx import OnnxGraphBuilder, load_model_bytes, model_to_bytes
from repro.runtime import run_ckks_function


def build_model():
    rng = np.random.default_rng(0)
    builder = OnnxGraphBuilder("credit_score")
    builder.add_input("features", [1, 24])
    builder.add_initializer(
        "w", (rng.normal(size=(3, 24)) * 0.3).astype(np.float32))
    builder.add_initializer("b", rng.normal(size=(3,)).astype(np.float32))
    builder.add_node("Gemm", ["features", "w", "b"], outputs=["output"],
                     transB=1)
    builder.add_output("output", [1, 3])
    return load_model_bytes(model_to_bytes(builder.build()))


def main() -> None:
    model = build_model()
    params = CkksParameters(poly_degree=256, scale_bits=30,
                            first_prime_bits=40, num_levels=4)
    program = ACECompiler(model, CompileOptions(
        exact_params=params, bootstrap_enabled=False, poly_mode="off",
    )).compile()
    backend = program.make_exact_backend(params, seed=7)
    cipher_basis, _ = params.make_bases()
    encryptor, decryptor = client_tools(program)

    # ---- client side -------------------------------------------------
    features = np.random.default_rng(1).uniform(-1, 1, size=(1, 24))
    ct = encryptor(backend, features)
    wire_to_server = serialize_ciphertext(ct)
    print(f"client -> server: {len(wire_to_server)} ciphertext bytes "
          f"(plaintext never leaves the client)")

    # ---- server side (no secret key used below) ------------------------
    server_ct = deserialize_ciphertext(wire_to_server, cipher_basis)
    outs = run_ckks_function(program.module, program.module.main(),
                             backend, [server_ct])
    wire_to_client = serialize_ciphertext(outs[0])
    print(f"server -> client: {len(wire_to_client)} result bytes")

    # ---- client side --------------------------------------------------
    result_ct = deserialize_ciphertext(wire_to_client, cipher_basis)
    scores = decryptor(backend, result_ct)
    weights = {t.name: t.to_numpy() for t in model.graph.initializer}
    expected = (features @ weights["w"].T + weights["b"]).ravel()
    print(f"decrypted scores: {np.round(scores.ravel(), 4)}")
    print(f"expected        : {np.round(expected, 4)}")
    assert np.allclose(scores.ravel(), expected, atol=1e-3)
    print("protocol OK — computation matched, data stayed encrypted")


if __name__ == "__main__":
    main()
