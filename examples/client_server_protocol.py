"""The Figure-2 threat-model protocol through the serving subsystem.

A *client* holds the secret key; an untrusted *server* holds only the
compiled program, the evaluation keys and the model weights.  The client
encrypts an input and ships serialized ciphertext bytes over a real
socket; the server batches compatible requests into shared ciphertext
slots, runs encrypted inference, and ships bytes back; the client
decrypts.  The server never observes the plaintext.

The heavy lifting — compile-once model registry, slot batching, worker
pool, wire protocol — lives in :mod:`repro.serve`; this example is the
protocol in a dozen lines.  (The end-to-end path is tier-1-tested in
``tests/test_serve_protocol.py``.)

Run:  python examples/client_server_protocol.py
"""

import numpy as np

from repro.onnx import OnnxGraphBuilder, load_model_bytes, model_to_bytes
from repro.serve import InferenceServer, ModelRegistry, RemoteModelClient


def build_model():
    rng = np.random.default_rng(0)
    builder = OnnxGraphBuilder("credit_score")
    builder.add_input("features", [1, 24])
    builder.add_initializer(
        "w", (rng.normal(size=(3, 24)) * 0.3).astype(np.float32))
    builder.add_initializer("b", rng.normal(size=(3,)).astype(np.float32))
    builder.add_node("Gemm", ["features", "w", "b"], outputs=["output"],
                     transB=1)
    builder.add_output("output", [1, 3])
    return load_model_bytes(model_to_bytes(builder.build()))


def main() -> None:
    model = build_model()
    weights = {t.name: t.to_numpy() for t in model.graph.initializer}

    # ---- server side: compile once, generate keys once, serve ----------
    registry = ModelRegistry()
    registry.register("credit", model, max_batch=4, seed=7)
    with InferenceServer(registry) as server:
        print(f"server: credit model on {server.host}:{server.port}, "
              f"batching up to 4 requests per ciphertext")

        # ---- client side: secret key stays here -------------------------
        with RemoteModelClient(server.host, server.port,
                               "credit") as client:
            features = np.random.default_rng(1).uniform(
                -1, 1, size=(1, 24))
            wire = client.encrypt(features)
            print(f"client -> server: {len(wire)} ciphertext bytes "
                  f"(plaintext never leaves the client)")
            reply, body = client.infer_bytes(wire)
            print(f"server -> client: {len(body)} result bytes "
                  f"(slot offset {reply['slot_offset']}, "
                  f"{reply['latency_s'] * 1000:.1f} ms)")
            scores = client.decrypt(body, reply["slot_offset"])

        expected = (features @ weights["w"].T + weights["b"]).ravel()
        print(f"decrypted scores: {np.round(scores.ravel(), 4)}")
        print(f"expected        : {np.round(expected, 4)}")
        assert np.allclose(scores.ravel(), expected, atol=1e-3)
        print("protocol OK — computation matched, data stayed encrypted")


if __name__ == "__main__":
    main()
