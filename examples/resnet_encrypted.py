"""Encrypted ResNet inference end-to-end (the paper's headline workload).

Trains a CIFAR-style ResNet on a synthetic dataset, exports it to ONNX,
compiles it with the ANT-ACE reproduction and compares encrypted (SimBackend
with calibrated CKKS noise) vs cleartext predictions — a single-model
slice of Table 11 — and prints the ACE-vs-Expert phase breakdown of
Figure 6.

Run:  python examples/resnet_encrypted.py [depth]
"""

import sys
import time

import numpy as np

from repro.backend import SchemeConfig, SimBackend
from repro.compiler import ACECompiler, CompileOptions
from repro.evalharness.costmodel import CostModel
from repro.expert import ExpertConfig, ExpertInference
from repro.nn import SyntheticCifar, build_resnet, model_to_onnx, train_classifier
from repro.onnx import load_model_bytes, model_to_bytes
from repro.passes.frontend import onnx_to_nn


def main() -> None:
    depth = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    rng = np.random.default_rng(0)
    dataset = SyntheticCifar(num_classes=10, image_size=16, channels=3,
                             noise=0.3, seed=1)
    model = build_resnet(depth, num_classes=10, in_channels=3,
                         base_width=8, input_size=16, seed=2)
    print(f"training ResNet-{depth} on synthetic CIFAR ...")
    train_classifier(model, dataset, steps=300, batch_size=32, lr=0.01,
                     seed=3)

    proto = load_model_bytes(model_to_bytes(model_to_onnx(model)))
    calib, _ = dataset.sample(4, seed=5)
    print("compiling ...")
    t0 = time.perf_counter()
    program = ACECompiler(proto, CompileOptions(
        sign_iterations=4,
        calibration_inputs=[img[None] for img in calib],
    )).compile()
    print(f"compiled in {time.perf_counter() - t0:.1f}s: "
          f"{program.stats['ckks_ops']} CKKS ops, "
          f"{program.stats['rotations']} rotation keys, "
          f"N=2^{program.selection.log_n}")

    images, labels = dataset.sample(5, seed=9)
    backend = program.make_sim_backend(seed=4)
    agree = correct = 0
    for image, label in zip(images, labels):
        logits = program.run(backend, image[None], check_plan=False)[0]
        plain = model.forward(image[None]).ravel()
        agree += int(np.argmax(logits) == np.argmax(plain))
        correct += int(np.argmax(logits) == label)
    print(f"encrypted-vs-plain prediction agreement: {agree}/5, "
          f"encrypted accuracy: {correct}/5")

    # Expert comparison (Figure 6 in miniature)
    module = onnx_to_nn(proto)
    cfg = ExpertConfig()
    scheme = SchemeConfig(
        poly_degree=program.scheme.poly_degree,
        scale_bits=program.scheme.scale_bits,
        first_prime_bits=program.scheme.first_prime_bits,
        num_levels=4 * cfg.sign_iterations + 8,
    )
    exp_backend = SimBackend(scheme, inject_noise=False, seed=5)
    expert = ExpertInference(module, exp_backend, cfg)
    expert.run(images[0][None])
    ace_cost = CostModel(program.scheme.poly_degree)
    exp_cost = CostModel(scheme.poly_degree)
    backend.trace.clear()
    program.run(backend, images[0][None], check_plan=False)
    ace_t = ace_cost.trace_seconds(backend.trace)
    exp_t = exp_cost.trace_seconds(exp_backend.trace)
    print(f"modelled per-image time  ACE: {sum(ace_t.values()):.2f}s  "
          f"Expert: {sum(exp_t.values()):.2f}s  "
          f"speedup {sum(exp_t.values()) / sum(ace_t.values()):.2f}x")


if __name__ == "__main__":
    main()
