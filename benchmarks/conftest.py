"""Shared benchmark configuration.

Environment knobs:

* ``REPRO_EVAL_MODELS`` — comma-separated subset of the six evaluation
  models (default: "ResNet-20,ResNet-32,ResNet-32*").  Set it to "all"
  to regenerate every figure/table over the full six-model set.
* ``REPRO_EVAL_SCALE``  — "ci" (default, 3x16x16 inputs) or "paper"
  (3x32x32, N = 2^16 — slow: hours for the full suite, like the paper's
  25+-hour artifact).
* ``REPRO_EVAL_IMAGES`` — images per model for Table 11 (default 5; the
  paper's artifact quick mode uses 10).
"""

import os

import pytest

from repro.evalharness.models import EVAL_MODELS

_DEFAULT_MODELS = "ResNet-20,ResNet-32"


def selected_models() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_EVAL_MODELS", _DEFAULT_MODELS)
    if raw.strip().lower() == "all":
        return EVAL_MODELS
    return tuple(m.strip() for m in raw.split(",") if m.strip())


def eval_scale() -> str:
    return os.environ.get("REPRO_EVAL_SCALE", "ci")


def eval_images() -> int:
    return int(os.environ.get("REPRO_EVAL_IMAGES", "5"))


@pytest.fixture(scope="session")
def models():
    return selected_models()


@pytest.fixture(scope="session")
def scale():
    return eval_scale()
