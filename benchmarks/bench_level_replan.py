"""Benchmark of the global level/bootstrap re-planning pipeline.

Bootstrapping is the most expensive operation in the system, and the
lowering places it from a SIHE-level depth *estimate*.  This bench
measures what the post-optimizer machinery wins back on real prime
chains (``exact_params``), where estimates are least reliable:

* **siamese-towers** (gated) — two branches sharing one encoder's
  weights (the exporter idiom for siamese/two-tower models).  The raw
  lowering refreshes each branch independently; at ``--opt-level 2``
  whole-DAG CSE merges the towers *across refresh boundaries* (the
  ``hint``/``region`` diagnostic attrs no longer poison the CSE key)
  and the re-planned program keeps a single, lower-targeted refresh.
  Gates:

  - at least one ``ckks.bootstrap`` eliminated at opt 2 vs opt 0;
  - end-to-end ExactBackend speedup >= 1.2x;
  - bit-identical decrypted outputs on the noiseless simulator;
  - opt-0 and opt-2 ExactBackend outputs agree numerically.

* **residual-replan** (gated) — a residual block whose mismatched-scale
  adds cost more alignment units than the depth estimate predicts, so
  the lowering's retry ladder settles on a wide refresh margin for the
  *whole* chain.  The replanner then measures the optimized DAG and
  retargets the over-provisioned refreshes back down.  Gates:

  - the replanner adopts >= 1 retarget (sum of refresh targets drops);
  - modeled cost does not regress;
  - bit-identical noiseless-simulator outputs at opt 0 vs opt 2.

Results are written to ``BENCH_level_replan.json`` (override with
``--out``).

Run:   PYTHONPATH=src python benchmarks/bench_level_replan.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

import numpy as np

from repro.ckks import CkksParameters
from repro.compiler import ACECompiler, CompileOptions
from repro.onnx import OnnxGraphBuilder, load_model_bytes, model_to_bytes
from repro.passes.opt import bootstrap_count, key_switch_count

BOOTSTRAPS_ELIMINATED_TARGET = 1
SPEEDUP_TARGET = 1.2

#: toy-but-real CKKS parameters that support bootstrapping (the shape
#: used by tests/test_bootstrap.py), deep enough for multi-refresh runs
def _params(num_levels: int) -> CkksParameters:
    return CkksParameters(
        poly_degree=64,
        scale_bits=25,
        first_prime_bits=26,
        num_levels=num_levels,
        num_special_primes=1,
        secret_hamming_weight=8,
    )


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _gemm(builder, rng, cur, name, features):
    w = (rng.normal(size=(features, features)) * 0.4).astype(np.float32)
    bias = (rng.normal(size=(features,)) * 0.1).astype(np.float32)
    return builder.add_node(
        "Gemm", [cur, builder.add_initializer(f"w{name}", w),
                 builder.add_initializer(f"b{name}", bias)], transB=1)


def build_siamese_model(features: int, tower_layers: int, seed: int = 0):
    """Two branches applying the *same* Gemm+ReLU encoder to one input.

    The initializers are shared (one weight set, two structurally
    duplicated node chains), so every branch op — including its
    bootstraps — is a common subexpression the optimizer can merge.
    """
    rng = np.random.default_rng(seed)
    builder = OnnxGraphBuilder("siamese_towers")
    builder.add_input("x", [1, features])
    weights = []
    for i in range(tower_layers):
        w = (rng.normal(size=(features, features)) * 0.4).astype(np.float32)
        bias = (rng.normal(size=(features,)) * 0.1).astype(np.float32)
        weights.append((builder.add_initializer(f"w{i}", w),
                        builder.add_initializer(f"b{i}", bias)))
    tips = []
    for _branch in range(2):
        cur = "x"
        for wn, bn in weights:
            g = builder.add_node("Gemm", [cur, wn, bn], transB=1)
            cur = builder.add_node("Relu", [g])
        tips.append(cur)
    joined = builder.add_node("Add", tips)
    wh = builder.add_initializer(
        "wh", (rng.normal(size=(features, features)) * 0.3).astype(
            np.float32))
    builder.add_node("Gemm", [joined, wh], outputs=["output"], transB=1)
    builder.add_output("output", [1, features])
    return load_model_bytes(model_to_bytes(builder.build()))


def build_residual_model(features: int, plain_layers: int, seed: int = 0):
    """A residual block followed by plain Gemm+ReLU layers.

    The residual join adds values at mismatched scales, which costs
    alignment units the SIHE depth estimate cannot see — the retry
    ladder widens the global refresh margin, over-provisioning the
    plain layers' refreshes until the replanner trims them back.
    """
    rng = np.random.default_rng(seed)
    builder = OnnxGraphBuilder("residual_replan")
    builder.add_input("x", [1, features])
    g1 = _gemm(builder, rng, "x", 0, features)
    r1 = builder.add_node("Relu", [g1])
    g2 = _gemm(builder, rng, r1, 1, features)
    joined = builder.add_node("Add", [g2, r1])
    cur = builder.add_node("Relu", [joined])
    for i in range(plain_layers):
        g = _gemm(builder, rng, cur, 2 + i, features)
        cur = builder.add_node(
            "Relu", [g],
            outputs=["output"] if i == plain_layers - 1 else None)
    builder.add_output("output", [1, features])
    return load_model_bytes(model_to_bytes(builder.build()))


def _compile_pair(model, params):
    return {
        level: ACECompiler(model, CompileOptions(
            exact_params=params, poly_mode="off", sign_iterations=2,
            opt_level=level)).compile()
        for level in (0, 2)
    }


def _sim_identical(model, image) -> bool:
    """Bit-identity of decrypted outputs across opt levels, checked on
    the synthetic-scheme compile of the same model (exact-params
    programs are scheduled against real primes and cannot replay on the
    power-of-two simulator moduli)."""
    outs = {}
    for level in (0, 2):
        program = ACECompiler(model, CompileOptions(
            poly_mode="off", sign_iterations=2, opt_level=level)).compile()
        backend = program.make_sim_backend(inject_noise=False, seed=0)
        outs[level] = program.run(backend, image)[0]
    return bool(np.array_equal(outs[0], outs[2]))


def bench_siamese_towers(features: int, tower_layers: int,
                         repeats: int) -> dict:
    """The gated row: refresh elimination and exact e2e speedup.

    ``num_levels=36`` leaves room for the physical bootstrap circuit
    (depth 18 at these toy parameters), so every planned refresh target
    is actually reachable by the ExactBackend's bootstrapper.
    """
    params = _params(num_levels=36)
    model = build_siamese_model(features, tower_layers)
    programs = _compile_pair(model, params)
    boots = {level: bootstrap_count(p.module)
             for level, p in programs.items()}
    rng = np.random.default_rng(1)
    image = rng.normal(size=(1, features)) * 0.5

    sim_identical = _sim_identical(model, image)
    exact_outs, times = {}, {}
    for level, program in programs.items():
        backend = program.make_exact_backend(params, seed=0)
        exact_outs[level] = program.run(backend, image,
                                        check_plan=False)[0]
        times[level] = _median_time(
            lambda: program.run(backend, image, check_plan=False), repeats)
    return {
        "model": "siamese-towers",
        "features": features,
        "tower_layers": tower_layers,
        "num_levels": params.num_levels,
        "bootstraps": {"opt0": boots[0], "opt2": boots[2]},
        "bootstraps_eliminated": boots[0] - boots[2],
        "bootstrap_targets": {
            "opt0": programs[0].bootstrap_targets,
            "opt2": programs[2].bootstrap_targets,
        },
        "key_switches": {
            "opt0": key_switch_count(programs[0].module),
            "opt2": key_switch_count(programs[2].module),
        },
        "opt0_s": times[0],
        "opt2_s": times[2],
        "speedup": times[0] / times[2],
        "noiseless_sim_identical": sim_identical,
        "exact_outputs_close": bool(
            np.allclose(exact_outs[0], exact_outs[2], atol=0.05)),
        "gated": True,
    }


def bench_residual_replan(features: int, plain_layers: int) -> dict:
    """The replanner row: measured needs retarget over-provisioned
    refreshes on a real prime chain."""
    params = _params(num_levels=17)
    model = build_residual_model(features, plain_layers)
    programs = _compile_pair(model, params)
    rng = np.random.default_rng(2)
    image = rng.normal(size=(1, features)) * 0.5
    sim_identical = _sim_identical(model, image)
    levels_stats = programs[2].stats["levels"]
    targets = {
        "opt0": programs[0].bootstrap_targets,
        "opt2": programs[2].bootstrap_targets,
    }
    return {
        "model": "residual-replan",
        "features": features,
        "plain_layers": plain_layers,
        "num_levels": params.num_levels,
        "align_margin": programs[2].stats["align_margin"],
        "bootstrap_targets": targets,
        "replan_rounds": levels_stats.get("rounds_run", 0),
        "retargets_adopted": sum(
            1 for row in levels_stats.get("rounds", []) if row["adopted"]),
        "targets_sum_reduction": sum(targets["opt0"]) - sum(targets["opt2"]),
        "modeled_cost_reduction": levels_stats.get("cost_reduction", 0.0),
        "noiseless_sim_identical": sim_identical,
        "gated": True,
    }


def run(quick: bool) -> dict:
    repeats = 2 if quick else 5
    siamese = bench_siamese_towers(features=8, tower_layers=3,
                                   repeats=repeats)
    residual = bench_residual_replan(features=8, plain_layers=1)
    return {
        "benchmark": "bench_level_replan",
        "mode": "quick" if quick else "full",
        "bootstraps_eliminated_target": BOOTSTRAPS_ELIMINATED_TARGET,
        "speedup_target": SPEEDUP_TARGET,
        "runs": [siamese, residual],
    }


def check(results: dict) -> list[str]:
    """Gate failures (empty list = pass)."""
    failures = []
    for row in results["runs"]:
        name = row["model"]
        if row.get("noiseless_sim_identical") is False:
            failures.append(
                f"{name}: opt levels disagree on the noiseless simulator")
        if name == "siamese-towers":
            if (row["bootstraps_eliminated"]
                    < results["bootstraps_eliminated_target"]):
                failures.append(
                    f"{name}: only {row['bootstraps_eliminated']} refreshes "
                    f"eliminated at opt 2 (target "
                    f">= {results['bootstraps_eliminated_target']})")
            if row["speedup"] < results["speedup_target"]:
                failures.append(
                    f"{name}: exact-backend speedup {row['speedup']:.2f}x "
                    f"below the {results['speedup_target']:.2f}x target")
            if not row["exact_outputs_close"]:
                failures.append(
                    f"{name}: opt-0 and opt-2 ExactBackend outputs diverge")
        if name == "residual-replan":
            if row["retargets_adopted"] < 1:
                failures.append(
                    f"{name}: the replanner adopted no retarget round")
            if row["targets_sum_reduction"] < 1:
                failures.append(
                    f"{name}: refresh targets were not lowered "
                    f"({row['bootstrap_targets']})")
            if row["modeled_cost_reduction"] < 0.0:
                failures.append(f"{name}: modeled cost regressed")
    return failures


def test_level_replan_eliminates_refreshes():
    results = run(quick=True)
    assert not check(results), check(results)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer timing repeats for CI")
    parser.add_argument("--out", default="BENCH_level_replan.json",
                        help="where to write the JSON results")
    args = parser.parse_args()
    results = run(args.quick)
    failures = check(results)
    results["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    for row in results["runs"]:
        print(json.dumps(row, indent=2))
    if failures:
        print("GATE FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"all gates passed; results in {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
