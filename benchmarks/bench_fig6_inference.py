"""Figure 6 — per-image inference time, ANT-ACE vs Expert, by phase.

The paper reports an average 2.24x speedup with reductions of 31.5 %
(Conv), 63.3 % (Bootstrap) and 44.6 % (ReLU).  We assert the *shape*:
ACE wins overall and in every phase.
"""

from repro.evalharness import fig6


def test_fig6_ace_beats_expert(benchmark, models, scale, capsys):
    rows = benchmark.pedantic(
        lambda: fig6.inference_rows(models, scale), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + fig6.render(rows))
    for row in rows:
        assert row["speedup"] > 1.0, f"{row['model']}: ACE slower than expert"
    reductions = fig6.phase_reductions(rows)
    assert reductions["Bootstrap"] > 20.0
    assert reductions["ReLU"] > 10.0
    assert reductions["Conv"] > 5.0
    avg = fig6.average_speedup(rows)
    assert 1.2 < avg < 10.0, f"average speedup {avg} out of plausible range"


def test_fig6_single_inference_benchmark(benchmark, models, scale):
    """Wall-clock of one simulated encrypted inference (smallest model)."""
    from repro.evalharness.models import compiled_model

    program, _model, dataset = compiled_model(models[0], scale)
    image, _ = dataset.sample(1, seed=77)
    backend = program.make_sim_backend(inject_noise=False, seed=0)

    def run_once():
        return program.run(backend, image[0][None], check_plan=False)

    benchmark.pedantic(run_once, rounds=1, iterations=1)
