"""Benchmark of the operation-level parallel DAG executor.

Times a branchy compiled-shape CKKS program (independent rotation chains
off one input, folded by an add tree — the ResNet-residual shape the
scheduler exploits) executed sequentially (``jobs=1``) vs in parallel
(``jobs=4``), and gates two properties:

* **bit identity** — the parallel run must produce residue-for-residue
  identical ciphertexts on the real backend (always gated);
* **speedup >= 1.3x at jobs=4** — gated on two models:

  - a *latency model*: every homomorphic op carries a fixed
    GIL-releasing delay, so the measured speedup isolates the
    scheduler's overlap from kernel throughput.  Gated on every
    machine, including single-core CI runners.
  - the *real model*: actual RNS kernel wall clock.  numpy releases the
    GIL inside the NTT/modmul hot loops, so threads genuinely overlap —
    but only when the host has cores to run them.  Gated when
    ``sched_getaffinity`` reports >= 2 usable CPUs, recorded as
    ``skipped_single_core`` otherwise.

The wavefront statistics of the benchmarked program (stage count,
max/mean width) ride along in the JSON so the recorded speedup can be
read against the available instruction-level parallelism.

Results are written to ``BENCH_parallel_exec.json`` (override with
``--out``).

Run:   PYTHONPATH=src python benchmarks/bench_parallel_exec.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time

import numpy as np

from repro.backend import ExactBackend, SchemeConfig, SimBackend
from repro.ckks import CkksParameters
from repro.ir import CipherType, IRBuilder, Module, compute_schedule
from repro.passes.opt import optimize_module
from repro.runtime.ckks_interp import run_ckks_function

SPEEDUP_TARGET = 1.3
PARALLEL_JOBS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def build_branchy_program(slots: int, branches: int, chain: int) -> tuple:
    """The residual-block shape: `branches` independent rotation chains
    from one input, folded by a balanced add-reduce tree."""
    module = Module("bench")
    b = IRBuilder.make_function(module, "main", [CipherType(slots)], ["x"])
    x = b.function.params[0]
    tips = []
    for i in range(1, branches + 1):
        v = x
        for _ in range(chain):
            v = b.emit("ckks.rotate", [v], {"steps": i})
        tips.append(v)
    while len(tips) > 1:
        tips = [
            b.emit("ckks.add", [tips[j], tips[j + 1]])
            if j + 1 < len(tips) else tips[j]
            for j in range(0, len(tips), 2)
        ]
    b.ret(tips)
    return module, b.function


def _schedules_around_opt(slots: int, branches: int, chain: int) -> dict:
    """Wavefront stats before and after the op-reduction optimizer.

    Built on a fresh copy so the benchmarked (unoptimized) program is
    untouched: the rotation chains compose to one rotation per branch,
    which shortens the critical path without narrowing the usable width.
    """
    pre_module, pre_fn = build_branchy_program(slots, branches, chain)
    pre = compute_schedule(pre_fn).describe()
    post_module, post_fn = build_branchy_program(slots, branches, chain)
    optimize_module(post_module, "ckks", opt_level=2)
    post = compute_schedule(post_fn).describe()
    return {"schedule_pre_opt": pre, "schedule_post_opt": post}


class LatencyBackend:
    """Delegating wrapper adding a fixed GIL-releasing delay per op.

    ``time.sleep`` drops the GIL, so overlap between worker threads is
    measurable even on a single core — this isolates the *scheduler's*
    ability to run independent ops concurrently from the host's kernel
    throughput.
    """

    _DELAYED = frozenset({
        "add", "add_plain", "sub", "sub_plain", "negate", "mul",
        "mul_plain", "relinearize", "rescale", "mod_switch", "upscale",
        "bootstrap", "rotate", "conjugate",
    })

    def __init__(self, inner, delay_s: float):
        self._inner = inner
        self._delay = delay_s

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if name in self._DELAYED:
            delay = self._delay

            def wrapped(*args, **kwargs):
                time.sleep(delay)
                return attr(*args, **kwargs)

            return wrapped
        return attr


def bench_latency_model(branches: int, chain: int,
                        delay_ms: float, repeats: int) -> dict:
    """Scheduler-overlap gate: fixed per-op latency, any host."""
    module, fn = build_branchy_program(64, branches, chain)

    def make_backend():
        return LatencyBackend(
            SimBackend(
                SchemeConfig(poly_degree=128, scale_bits=40,
                             first_prime_bits=50, num_levels=6),
                inject_noise=True, seed=0,
            ),
            delay_ms / 1e3,
        )

    x = np.linspace(-1, 1, 64)

    def once(jobs):
        return run_ckks_function(module, fn, make_backend(), [x],
                                 check_plan=False, jobs=jobs)[0]

    seq_out = once(1)
    par_out = once(PARALLEL_JOBS)
    sequential_s = _median_time(lambda: once(1), repeats)
    parallel_s = _median_time(lambda: once(PARALLEL_JOBS), repeats)
    return {
        "model": "latency",
        "ops": len(fn.body),
        "delay_ms": delay_ms,
        "schedule": compute_schedule(fn).describe(),
        "sequential_s": sequential_s,
        "parallel_s": parallel_s,
        "speedup": sequential_s / parallel_s,
        "bit_identical": bool(np.array_equal(seq_out.values,
                                             par_out.values)),
        "gated": True,
    }


def bench_real_model(poly_degree: int, num_levels: int, branches: int,
                     chain: int, repeats: int) -> dict:
    """Real RNS kernels: speedup gated only on multi-core hosts."""
    params = CkksParameters(poly_degree=poly_degree, scale_bits=40,
                            first_prime_bits=50, num_levels=num_levels)
    slots = params.num_slots
    module, fn = build_branchy_program(slots, branches, chain)
    backend = ExactBackend(
        params, rotation_steps=list(range(1, branches + 1)), seed=0
    )
    x = np.linspace(-1, 1, slots)
    ct = backend.encrypt(x)  # shared input: runs differ only in jobs

    def once(jobs):
        return run_ckks_function(module, fn, backend, [ct],
                                 check_plan=False, jobs=jobs)[0]

    seq_out = once(1)  # also warms NTT tables / restricted key stacks
    par_out = once(PARALLEL_JOBS)
    bit_identical = all(
        np.array_equal(a.residues, b.residues)
        for a, b in zip(seq_out.parts, par_out.parts)
    )
    sequential_s = _median_time(lambda: once(1), repeats)
    parallel_s = _median_time(lambda: once(PARALLEL_JOBS), repeats)
    cpus = _usable_cpus()
    gated = cpus >= 2
    return {
        "model": "real",
        "poly_degree": poly_degree,
        "num_levels": num_levels,
        "ops": len(fn.body),
        "schedule": compute_schedule(fn).describe(),
        **_schedules_around_opt(slots, branches, chain),
        "usable_cpus": cpus,
        "sequential_s": sequential_s,
        "parallel_s": parallel_s,
        "speedup": sequential_s / parallel_s,
        "bit_identical": bit_identical,
        "rotation_fallbacks": backend.rotation_fallbacks,
        "gated": gated,
        "skipped": None if gated else "skipped_single_core",
    }


def run(quick: bool) -> dict:
    if quick:
        latency = bench_latency_model(branches=8, chain=4, delay_ms=4.0,
                                      repeats=3)
        real = bench_real_model(1024, 4, branches=8, chain=4, repeats=3)
    else:
        latency = bench_latency_model(branches=8, chain=8, delay_ms=5.0,
                                      repeats=5)
        real = bench_real_model(2048, 6, branches=8, chain=8, repeats=5)
    return {
        "benchmark": "bench_parallel_exec",
        "mode": "quick" if quick else "full",
        "jobs": PARALLEL_JOBS,
        "speedup_target": SPEEDUP_TARGET,
        "runs": [latency, real],
    }


def check(results: dict) -> list[str]:
    """Gate failures (empty list = pass)."""
    failures = []
    for row in results["runs"]:
        name = row["model"]
        if not row["bit_identical"]:
            failures.append(
                f"{name} model: parallel result is not bit-identical to "
                f"sequential execution"
            )
        if not row["gated"]:
            continue
        if row["speedup"] < results["speedup_target"]:
            failures.append(
                f"{name} model: jobs={results['jobs']} speedup "
                f"{row['speedup']:.2f}x below the "
                f"{results['speedup_target']:.1f}x target"
            )
    return failures


def test_parallel_executor_overlaps():
    results = run(quick=True)
    assert not check(results), check(results)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / fewer repeats for CI")
    parser.add_argument("--out", default="BENCH_parallel_exec.json",
                        help="where to write the JSON results")
    args = parser.parse_args()
    results = run(quick=args.quick)
    for row in results["runs"]:
        sched = row["schedule"]
        extra = (f"N={row['poly_degree']}" if row["model"] == "real"
                 else f"delay={row['delay_ms']}ms")
        print(
            f"{row['model']:8s} {extra:12s} ops={row['ops']:3d} "
            f"stages={sched['stages']:3d} width<= {sched['max_width']:2d}: "
            f"jobs=1 {row['sequential_s']:7.3f}s  "
            f"jobs={results['jobs']} {row['parallel_s']:7.3f}s  "
            f"speedup {row['speedup']:5.2f}x  "
            f"bit-identical={row['bit_identical']}"
            + ("" if row["gated"] else f"  [{row['skipped']}]")
        )
    failures = check(results)
    results["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"results written to {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"target (jobs={results['jobs']} >= "
          f"{results['speedup_target']:.1f}x jobs=1): PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
