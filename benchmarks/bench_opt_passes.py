"""Benchmark of the algebraic op-reduction optimizer (``--opt-level``).

Two rows:

* **bsgs-heads** (gated) — a multi-head BSGS GEMM: several attention-
  style heads share one input, so every head re-derives the same
  baby-step rotations and the optimizer's cross-head CSE merges them.
  Compiled at ``--opt-level 0`` (raw lowering) and ``2`` (default) and
  executed on one :class:`ExactBackend` with one shared pre-encrypted
  input, which makes the runs directly comparable and lets the bench
  assert *ciphertext bit-identity* between opt levels — on this model
  only bit-exact rewrites fire, so the optimized program must produce
  residue-for-residue identical output.  Gates:

  - key-switch ops (relin + rotate + conjugate) reduced by >= 15%;
  - end-to-end execution speedup >= 1.15x;
  - bit-identical ExactBackend ciphertexts at opt 0 vs opt 2.

* **relu-lazy-relin** (recorded, not gated) — a GEMM+ReLU model whose
  sign-polynomial evaluation exercises the lazy-relinearisation
  patterns (relin/rescale commutation).  Records the rewrite count and
  checks opt-0/opt-2 agreement on a noiseless ``SimBackend``, where
  every level-2 rewrite is exact arithmetic.

Results are written to ``BENCH_opt_passes.json`` (override with
``--out``).

Run:   PYTHONPATH=src python benchmarks/bench_opt_passes.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

import numpy as np

from repro.backend import ExactBackend
from repro.ckks import CkksParameters
from repro.compiler import ACECompiler, CompileOptions
from repro.onnx import OnnxGraphBuilder, load_model_bytes, model_to_bytes
from repro.passes.opt import key_switch_count
from repro.runtime.ckks_interp import run_ckks_function

KEY_SWITCH_REDUCTION_TARGET = 0.15
SPEEDUP_TARGET = 1.15


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def build_heads_model(features: int, heads: int, seed: int = 0):
    """`heads` parallel GEMMs (distinct weights) on one input, summed.

    Each head's BSGS lowering emits the same baby-step rotations of the
    shared input; only the plaintext diagonal weights differ.  The raw
    lowering performs them per head — the optimizer merges them.
    """
    rng = np.random.default_rng(seed)
    builder = OnnxGraphBuilder("bsgs_heads")
    builder.add_input("x", [1, features])
    outs = []
    for h in range(heads):
        w = (rng.normal(size=(features, features)) * 0.3).astype(
            np.float32)
        bias = (rng.normal(size=(features,)) * 0.1).astype(np.float32)
        wn = builder.add_initializer(f"w{h}", w)
        bn = builder.add_initializer(f"b{h}", bias)
        outs.append(builder.add_node("Gemm", ["x", wn, bn], transB=1))
    current = outs[0]
    for h in range(1, heads):
        current = builder.add_node(
            "Add", [current, outs[h]],
            outputs=["output"] if h == heads - 1 else None)
    builder.add_output("output", [1, features])
    return load_model_bytes(model_to_bytes(builder.build()))


def bench_bsgs_heads(features: int, heads: int, poly_degree: int,
                     repeats: int) -> dict:
    """The gated row: opt 0 vs opt 2 on one exact backend."""
    model = build_heads_model(features, heads)
    params = CkksParameters(poly_degree=poly_degree, scale_bits=30,
                            first_prime_bits=40, num_levels=4)
    programs = {}
    for level in (0, 2):
        programs[level] = ACECompiler(model, CompileOptions(
            exact_params=params, bootstrap_enabled=False, poly_mode="off",
            gemm_strategy="bsgs", opt_level=level)).compile()
    key_switches = {level: key_switch_count(p.module)
                    for level, p in programs.items()}
    ops = {level: sum(fn.op_count() for fn in p.module.functions.values())
           for level, p in programs.items()}

    # one backend + one encrypted input: the two executions differ only
    # in the compiled op sequence, so ciphertexts must match bit for bit
    steps = sorted(set(programs[0].rotation_steps)
                   | set(programs[2].rotation_steps))
    backend = ExactBackend(params, rotation_steps=steps, seed=0)
    x = np.random.default_rng(1).normal(size=(1, features)) * 0.5
    ct = backend.encrypt(programs[0].pack_input(x))

    def once(level):
        module = programs[level].module
        return run_ckks_function(module, module.main(), backend, [ct],
                                 check_plan=False)[0]

    out0 = once(0)  # also warms NTT tables / key stacks
    out2 = once(2)
    bit_identical = len(out0.parts) == len(out2.parts) and all(
        np.array_equal(a.residues, b.residues)
        for a, b in zip(out0.parts, out2.parts)
    )
    times = {level: _median_time(lambda: once(level), repeats)
             for level in (0, 2)}
    reduction = (key_switches[0] - key_switches[2]) / key_switches[0]
    return {
        "model": "bsgs-heads",
        "features": features,
        "heads": heads,
        "poly_degree": poly_degree,
        "ops": {"opt0": ops[0], "opt2": ops[2]},
        "key_switches": {"opt0": key_switches[0], "opt2": key_switches[2]},
        "key_switch_reduction": reduction,
        "opt0_s": times[0],
        "opt2_s": times[2],
        "speedup": times[0] / times[2],
        "bit_identical": bit_identical,
        "opt_rows": programs[2].stats["opt"]["rows"],
        "gated": True,
    }


def bench_relu_lazy_relin(features: int) -> dict:
    """The showcase row: lazy relin around the ReLU sign polynomial."""
    rng = np.random.default_rng(3)
    builder = OnnxGraphBuilder("relu")
    builder.add_input("x", [1, features])
    w = (rng.normal(size=(features, features)) * 0.3).astype(np.float32)
    bias = (rng.normal(size=(features,)) * 0.1).astype(np.float32)
    h = builder.add_node(
        "Gemm", ["x", builder.add_initializer("w", w),
                 builder.add_initializer("b", bias)], transB=1)
    r = builder.add_node("Relu", [h])
    w2 = (rng.normal(size=(4, features)) * 0.3).astype(np.float32)
    builder.add_node("Gemm", [r, builder.add_initializer("w2", w2)],
                     outputs=["output"], transB=1)
    builder.add_output("output", [1, 4])
    model = load_model_bytes(model_to_bytes(builder.build()))
    image = rng.normal(size=(1, features)) * 0.5

    outputs, programs = {}, {}
    for level in (0, 2):
        programs[level] = ACECompiler(model, CompileOptions(
            poly_mode="off", opt_level=level)).compile()
        backend = programs[level].make_sim_backend(inject_noise=False,
                                                   seed=0)
        outputs[level] = programs[level].run(backend, image)[0]
    rows = programs[2].stats["opt"]["rows"]
    lazy = sum(r["rewrites"] for r in rows if r["pass"] == "lazy-relin")
    return {
        "model": "relu-lazy-relin",
        "features": features,
        "ops": {
            level: sum(fn.op_count()
                       for fn in programs[level].module.functions.values())
            for level in (0, 2)
        },
        "lazy_relin_rewrites": lazy,
        "noiseless_sim_identical": bool(
            np.array_equal(outputs[0], outputs[2])),
        "gated": False,
    }


def run(quick: bool) -> dict:
    if quick:
        heads = bench_bsgs_heads(features=32, heads=4, poly_degree=256,
                                 repeats=3)
        relu = bench_relu_lazy_relin(features=12)
    else:
        heads = bench_bsgs_heads(features=64, heads=4, poly_degree=512,
                                 repeats=5)
        relu = bench_relu_lazy_relin(features=16)
    return {
        "benchmark": "bench_opt_passes",
        "mode": "quick" if quick else "full",
        "key_switch_reduction_target": KEY_SWITCH_REDUCTION_TARGET,
        "speedup_target": SPEEDUP_TARGET,
        "runs": [heads, relu],
    }


def check(results: dict) -> list[str]:
    """Gate failures (empty list = pass)."""
    failures = []
    for row in results["runs"]:
        name = row["model"]
        if row.get("noiseless_sim_identical") is False:
            failures.append(
                f"{name}: opt levels disagree on the noiseless simulator")
        if not row["gated"]:
            continue
        if not row["bit_identical"]:
            failures.append(
                f"{name}: opt-2 ExactBackend ciphertext is not "
                f"bit-identical to opt-0")
        if (row["key_switch_reduction"]
                < results["key_switch_reduction_target"]):
            failures.append(
                f"{name}: key-switch reduction "
                f"{row['key_switch_reduction']:.1%} below the "
                f"{results['key_switch_reduction_target']:.0%} target")
        if row["speedup"] < results["speedup_target"]:
            failures.append(
                f"{name}: opt-2 speedup {row['speedup']:.2f}x below "
                f"the {results['speedup_target']:.2f}x target")
    return failures


def test_opt_passes_reduce_key_switches():
    results = run(quick=True)
    assert not check(results), check(results)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / fewer repeats for CI")
    parser.add_argument("--out", default="BENCH_opt_passes.json",
                        help="where to write the JSON results")
    args = parser.parse_args()
    results = run(quick=args.quick)
    for row in results["runs"]:
        if row["model"] == "bsgs-heads":
            ks = row["key_switches"]
            print(
                f"{row['model']:16s} N={row['poly_degree']} "
                f"heads={row['heads']}: key switches {ks['opt0']} -> "
                f"{ks['opt2']} (-{row['key_switch_reduction']:.1%})  "
                f"opt0 {row['opt0_s']:.3f}s  opt2 {row['opt2_s']:.3f}s  "
                f"speedup {row['speedup']:.2f}x  "
                f"bit-identical={row['bit_identical']}"
            )
        else:
            print(
                f"{row['model']:16s} ops {row['ops'][0]} -> "
                f"{row['ops'][2]}  lazy-relin rewrites "
                f"{row['lazy_relin_rewrites']}  noiseless-sim "
                f"identical={row['noiseless_sim_identical']}  [not gated]"
            )
    failures = check(results)
    results["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"results written to {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"targets (key switches -{KEY_SWITCH_REDUCTION_TARGET:.0%}, "
        f"speedup >= {SPEEDUP_TARGET:.2f}x, exact bit-identity): PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
