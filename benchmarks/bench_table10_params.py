"""Table 10 — automatic security-parameter selection.

At paper scale the selector must reproduce the exact published values
(log2 N = 16, log2 Q0 = 60, log2 Δ = 56 for every model); we check that
directly through the selector (the compiled ci-scale programs obviously
pick a smaller N, which we also check for consistency).
"""

from repro.evalharness import table10
from repro.params import ParameterSelector


def test_table10_paper_values_from_selector(benchmark):
    """ResNet-sized programs at N/2 = 32768 slots select the paper row."""
    selector = benchmark.pedantic(
        lambda: ParameterSelector(security_bits=128), rounds=1, iterations=1
    )
    # depth per bootstrap region for the paper's models: a ReLU block's
    # approximation plus the surrounding convolutions — ~18-26 levels
    for depth in (18, 20, 24, 26):
        sel = selector.select(depth=depth, simd_width=32768,
                              log_scale=56, log_q0=60)
        assert sel.table10_row() == table10.PAPER_ROW, depth


def test_table10_selection_is_secure(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.params.security import max_log_qp_for_degree

    selector = ParameterSelector(security_bits=128)
    sel = selector.select(depth=22, simd_width=32768)
    assert sel.log_qp <= max_log_qp_for_degree(sel.degree, 128)


def test_table10_compiled_models(benchmark, models, scale, capsys):
    rows = benchmark.pedantic(
        lambda: table10.parameter_rows(models, scale), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + table10.render(rows))
    # every model selects the same parameters (as in the paper), and they
    # cover the compiled programs' requirements
    assert len({(r["log2(N)"], r["log2(Q0)"], r["log2(Delta)"])
                for r in rows}) == 1
    for row in rows:
        assert row["log2(Q0)"] == 60
        assert row["log2(Delta)"] == 56


def test_table10_benchmark(benchmark):
    selector = ParameterSelector(security_bits=128)
    benchmark(lambda: selector.select(depth=22, simd_width=32768,
                                      log_scale=56, log_q0=60))
