"""Tables 1, 2, 3-7, 8, 9 — the survey, pass and operator tables, and
the LoC breakdown, regenerated from live data."""

from repro.evalharness import surveys, table8, table_ops
from repro.ir.registry import OPS


def test_table1_capabilities(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + surveys.render_table1())
    ace = surveys.TABLE1["ACE"]
    assert all(ace), "ACE claims every capability in Table 1"
    for name, caps in surveys.TABLE1.items():
        if name != "ACE":
            assert not all(caps), f"{name} should not match ACE's row"


def test_table2_pass_registry(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table_ops.render_table2())
    from repro.passes import passes_for_level

    assert "Bootstrapping Placement" in passes_for_level("CKKS")
    assert "Data Layout Selection" in passes_for_level("VECTOR")
    assert "Loop Fusion" in passes_for_level("POLY")


def test_tables_3_to_7_operator_sets(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table_ops.render_op_tables())
    # paper Table 3 operators all registered
    for op in ("conv", "gemm", "relu", "average_pool",
               "global_average_pool", "flatten", "reshape", "strided_slice"):
        assert f"nn.{op}" in OPS
    # Table 4
    for op in ("add", "broadcast", "mul", "pad", "reshape", "roll",
               "slice", "tile"):
        assert f"vector.{op}" in OPS
    # Table 5
    for op in ("rotate", "add", "sub", "mul", "neg", "encode", "decode"):
        assert f"sihe.{op}" in OPS
    # Table 6 additions
    for op in ("modswitch", "upscale", "rescale", "downscale",
               "bootstrap", "relin"):
        assert f"ckks.{op}" in OPS
    # Table 7 (fused granularity)
    for op in ("decomp", "mod_up", "mod_down", "rescale", "muladd",
               "decomp_modup", "ntt", "intt", "automorphism"):
        assert f"poly.{op}" in OPS


def test_table8_loc_breakdown(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = table8.loc_rows()
    with capsys.disabled():
        print("\n" + table8.render(rows))
    total = rows[-1]
    assert total["component"] == "Total"
    assert total["loc"] > 6000, "reproduction should be a substantial system"
    assert total["tests"] > 2000
    assert total["comments"] > 1000
    components = {r["component"] for r in rows}
    assert "Run-Time Library (ACEfhe-py)" in components


def test_table9_detailed_comparison(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + surveys.render_table9())
    ace = surveys.TABLE9["ANT-ACE"]
    assert "ONNX" in ace[2]
    assert "NN/VECTOR/SIHE/CKKS/POLY" in ace[4]


def test_section_4_5_listing_counts(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The gemv example's POLY-IR and generated-C line counts (§4.5)."""
    import numpy as np

    from repro.codegen import generate_c_like
    from repro.codegen.cgen import line_count
    from repro.compiler import ACECompiler, CompileOptions
    from repro.onnx import OnnxGraphBuilder, load_model_bytes, model_to_bytes

    rng = np.random.default_rng(0)
    builder = OnnxGraphBuilder("linear_infer")
    builder.add_input("image", [1, 84])
    builder.add_initializer(
        "fc.weight", rng.normal(size=(10, 84)).astype(np.float32))
    builder.add_initializer(
        "fc.bias", rng.normal(size=(10,)).astype(np.float32))
    builder.add_node("Gemm", ["image", "fc.weight", "fc.bias"],
                     outputs=["output"], transB=1)
    builder.add_output("output", [1, 10])
    model = load_model_bytes(model_to_bytes(builder.build()))
    program = ACECompiler(model, CompileOptions(poly_mode="full")).compile()
    poly_lines = program.stats["poly"]["poly_ir_lines"]
    c_lines = line_count(
        generate_c_like(program.module.functions["main_poly"])
    )
    with capsys.disabled():
        print(f"\n§4.5 — linear_infer: POLY IR {poly_lines} ops, "
              f"generated C {c_lines} lines "
              f"(paper: 331 POLY lines -> 68 C lines)")
    assert poly_lines > 100  # substantially expanded, like the paper's 331
    assert c_lines > poly_lines  # C includes the explicit RNS loops
