"""Microbenchmarks of the RNS-CKKS evaluator hot paths (real crypto).

Times the primitive kernels the cost model is calibrated against, then
gates the hot-path optimisations of the evaluator overhaul:

* **hoisted BSGS** — a dense slot-matrix multiply applied with
  ``hoisted=True`` (one shared key-switch decomposition for all baby
  steps) vs ``hoisted=False`` (every rotation pays its own
  decomposition).  The two paths must be *bit-identical* and hoisting
  must be >= 2x faster in full mode (>= 1x, i.e. strictly faster, in
  ``--quick`` CI mode where timings are noisy).
* **bootstrap** — one full bootstrap with hoisting vs the same
  bootstrap with ``rotate_hoisted`` forced back to a per-rotation loop.

Results are written to ``BENCH_micro_ckks.json`` (override with
``--out``) so before/after numbers ride along with the run.

Run:   PYTHONPATH=src python benchmarks/bench_micro_ckks.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

import numpy as np

from repro.backend import ExactBackend
from repro.ckks import CkksContext, CkksParameters
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.linear import LinearTransform, apply_hoisted_batch


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


# ----------------------------------------------------------------------
# primitive kernels
# ----------------------------------------------------------------------

def bench_primitives(repeats: int) -> dict[str, float]:
    params = CkksParameters(
        poly_degree=2048, scale_bits=40, first_prime_bits=50, num_levels=4
    )
    be = ExactBackend(params, rotation_steps=[1, 8], seed=0)
    x = np.linspace(-1, 1, be.config.num_slots)
    ct = be.encrypt(x)
    pt = be.encode(x, be.config.scale, be.config.max_level)
    prod = be.mul_plain(ct, pt)
    ops = {
        "encrypt": lambda: be.encrypt(x),
        "add": lambda: be.add(ct, ct),
        "mul_plain": lambda: be.mul_plain(ct, pt),
        "mul_cipher_relin": lambda: be.relinearize(be.mul(ct, ct)),
        "rotate": lambda: be.rotate(ct, 1),
        "rescale": lambda: be.rescale(prod),
    }
    out = {}
    for name, fn in ops.items():
        fn()  # warm caches (NTT tables, restricted keys)
        out[f"ckks_{name}_N2048_L4_ms"] = _median_time(fn, repeats) * 1e3
    return out


# ----------------------------------------------------------------------
# hoisted BSGS linear transform
# ----------------------------------------------------------------------

def bench_bsgs(poly_degree: int, num_levels: int, giant: int,
               repeats: int) -> dict:
    params = CkksParameters(
        poly_degree=poly_degree, scale_bits=40, first_prime_bits=50,
        num_levels=num_levels,
    )
    slots = params.num_slots
    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(slots, slots)) / slots
    lt = LinearTransform(matrix, giant=giant)
    be = ExactBackend(params, rotation_steps=lt.required_rotations(), seed=0)
    ct = be.encrypt(rng.uniform(-1, 1, slots))
    lt.apply(be.ev, ct, hoisted=True)  # warm diagonal + key caches
    baseline_s = _median_time(
        lambda: lt.apply(be.ev, ct, hoisted=False), repeats
    )
    hoisted_s = _median_time(
        lambda: lt.apply(be.ev, ct, hoisted=True), repeats
    )
    base = lt.apply(be.ev, ct, hoisted=False)
    hoisted = lt.apply(be.ev, ct, hoisted=True)
    bit_identical = all(
        np.array_equal(a.residues, b.residues)
        for a, b in zip(base.parts, hoisted.parts)
    )
    expected = matrix @ be.decrypt(ct, slots)
    max_error = float(np.max(np.abs(be.decrypt(hoisted, slots) - expected)))
    return {
        "poly_degree": poly_degree,
        "num_levels": num_levels,
        "giant": lt.giant,
        "baby": lt.baby,
        "baseline_s": baseline_s,
        "hoisted_s": hoisted_s,
        "speedup": baseline_s / hoisted_s,
        "bit_identical": bit_identical,
        "max_error": max_error,
        "rotation_fallbacks": be.rotation_fallbacks,
    }


# ----------------------------------------------------------------------
# bootstrap
# ----------------------------------------------------------------------

def _unhoisted_rotate(ev, ct, steps_list):
    """Per-rotation replacement for rotate_hoisted (bit-identical)."""
    return {step: ev.rotate(ct, step) for step in steps_list}


def bench_bootstrap() -> dict:
    """End-to-end bootstrap plus its CoeffToSlot stage in isolation.

    End-to-end bootstrap time is dominated by EvalMod (a deep polynomial
    evaluation with no rotations), so the hoisting win is diluted there;
    the CoeffToSlot stage — two BSGS transforms sharing one hoisted
    decomposition — is where rotations live, and is what the gate checks.
    """
    params = CkksParameters(
        poly_degree=128, scale_bits=25, first_prime_bits=26,
        num_levels=22, secret_hamming_weight=8,
    )
    ctx = CkksContext(params, rotation_steps=[], seed=0)
    bs = ctx.make_bootstrapper()
    ev = ctx.evaluator
    ct = ctx.encrypt(np.full(params.num_slots, 0.2), level=0)
    bs.bootstrap(ct)  # warm caches
    t0 = time.perf_counter()
    hoisted_ct = bs.bootstrap(ct)
    hoisted_s = time.perf_counter() - t0
    original = CkksEvaluator.rotate_hoisted
    CkksEvaluator.rotate_hoisted = _unhoisted_rotate
    try:
        t0 = time.perf_counter()
        baseline_ct = bs.bootstrap(ct)
        baseline_s = time.perf_counter() - t0
    finally:
        CkksEvaluator.rotate_hoisted = original
    bit_identical = all(
        np.array_equal(a.residues, b.residues)
        for a, b in zip(baseline_ct.parts, hoisted_ct.parts)
    )
    # CoeffToSlot stage: shared-decomposition batch vs per-rotation loop
    raised = bs.mod_raise(ct)
    halves = [bs._cts_low, bs._cts_high]
    apply_hoisted_batch(ev, raised, halves)  # warm
    t0 = time.perf_counter()
    cts_hoisted = apply_hoisted_batch(ev, raised, halves)
    cts_hoisted_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    cts_baseline = [lt.apply(ev, raised, hoisted=False) for lt in halves]
    cts_baseline_s = time.perf_counter() - t0
    cts_identical = all(
        np.array_equal(a.residues, b.residues)
        for x, y in zip(cts_hoisted, cts_baseline)
        for a, b in zip(x.parts, y.parts)
    )
    return {
        "poly_degree": params.poly_degree,
        "num_levels": params.num_levels,
        "target_level": bs.target_level,
        "baseline_s": baseline_s,
        "hoisted_s": hoisted_s,
        "speedup": baseline_s / hoisted_s,
        "bit_identical": bit_identical,
        "coeff_to_slot": {
            "baseline_s": cts_baseline_s,
            "hoisted_s": cts_hoisted_s,
            "speedup": cts_baseline_s / cts_hoisted_s,
            "bit_identical": cts_identical,
        },
    }


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def run(quick: bool) -> dict:
    results = {
        "benchmark": "bench_micro_ckks",
        "mode": "quick" if quick else "full",
        "primitives": bench_primitives(repeats=3 if quick else 15),
    }
    if quick:
        results["bsgs"] = [bench_bsgs(1024, 3, giant=128, repeats=1)]
        results["bsgs_speedup_target"] = 1.0
    else:
        results["bsgs"] = [
            bench_bsgs(2048, 4, giant=128, repeats=3),
            bench_bsgs(2048, 4, giant=256, repeats=3),
        ]
        results["bsgs_speedup_target"] = 2.0
    results["bootstrap"] = bench_bootstrap()
    return results


def check(results: dict) -> list[str]:
    """Gate failures (empty list = pass)."""
    failures = []
    target = results["bsgs_speedup_target"]
    best = max(row["speedup"] for row in results["bsgs"])
    for row in results["bsgs"]:
        if not row["bit_identical"]:
            failures.append(
                f"BSGS giant={row['giant']}: hoisted result is not "
                f"bit-identical to the per-rotation baseline"
            )
        if row["rotation_fallbacks"]:
            failures.append(
                f"BSGS giant={row['giant']}: {row['rotation_fallbacks']} "
                f"composed-rotation fallbacks with exact keys generated"
            )
    if best <= target:
        failures.append(
            f"hoisted BSGS speedup {best:.2f}x did not beat the "
            f"{target:.1f}x target"
        )
    boot = results["bootstrap"]
    if not boot["bit_identical"]:
        failures.append("bootstrap: hoisted result is not bit-identical")
    cts = boot["coeff_to_slot"]
    if not cts["bit_identical"]:
        failures.append(
            "bootstrap CoeffToSlot: hoisted result is not bit-identical"
        )
    if cts["speedup"] <= 1.0:
        failures.append(
            f"bootstrap CoeffToSlot: hoisting did not improve wall clock "
            f"({cts['speedup']:.2f}x)"
        )
    return failures


def test_hoisted_bsgs_faster():
    results = run(quick=True)
    assert not check(results), check(results)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / fewer repeats for CI")
    parser.add_argument("--out", default="BENCH_micro_ckks.json",
                        help="where to write the JSON results")
    args = parser.parse_args()
    results = run(quick=args.quick)
    for name, ms in results["primitives"].items():
        print(f"{name:38s} {ms:10.3f} ms")
    for row in results["bsgs"]:
        print(
            f"BSGS N={row['poly_degree']} L={row['num_levels']} "
            f"giant={row['giant']:3d} baby={row['baby']:3d}: "
            f"baseline {row['baseline_s']:7.3f}s  "
            f"hoisted {row['hoisted_s']:7.3f}s  "
            f"speedup {row['speedup']:5.2f}x  "
            f"bit-identical={row['bit_identical']}  "
            f"err={row['max_error']:.2e}"
        )
    boot = results["bootstrap"]
    print(
        f"bootstrap N={boot['poly_degree']} L={boot['num_levels']}: "
        f"baseline {boot['baseline_s']:7.3f}s  "
        f"hoisted {boot['hoisted_s']:7.3f}s  "
        f"speedup {boot['speedup']:5.2f}x  "
        f"bit-identical={boot['bit_identical']}"
    )
    cts = boot["coeff_to_slot"]
    print(
        f"  CoeffToSlot stage: "
        f"baseline {cts['baseline_s']:7.3f}s  "
        f"hoisted {cts['hoisted_s']:7.3f}s  "
        f"speedup {cts['speedup']:5.2f}x  "
        f"bit-identical={cts['bit_identical']}"
    )
    failures = check(results)
    results["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"results written to {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"target (hoisted BSGS > {results['bsgs_speedup_target']:.1f}x"
          f" baseline): PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
