"""Microbenchmarks of the ACEfhe-py runtime primitives (real crypto).

These are genuine pytest-benchmark timings of the exact RNS-CKKS kernels
(the ones the cost model is calibrated against)."""

import numpy as np
import pytest

from repro.backend import ExactBackend
from repro.ckks import CkksParameters


@pytest.fixture(scope="module")
def backend():
    params = CkksParameters(
        poly_degree=2048, scale_bits=40, first_prime_bits=50, num_levels=4
    )
    return ExactBackend(params, rotation_steps=[1, 8], seed=0)


@pytest.fixture(scope="module")
def operands(backend):
    x = np.linspace(-1, 1, backend.config.num_slots)
    ct = backend.encrypt(x)
    pt = backend.encode(x, backend.config.scale, backend.config.max_level)
    return ct, pt


def bench_name(op):
    return f"ckks_{op}_N2048_L4"


def test_bench_encrypt(benchmark, backend):
    x = np.linspace(-1, 1, backend.config.num_slots)
    benchmark(lambda: backend.encrypt(x))


def test_bench_add(benchmark, backend, operands):
    ct, _ = operands
    benchmark(lambda: backend.add(ct, ct))


def test_bench_mul_plain(benchmark, backend, operands):
    ct, pt = operands
    benchmark(lambda: backend.mul_plain(ct, pt))


def test_bench_mul_cipher_relin(benchmark, backend, operands):
    ct, _ = operands
    benchmark(lambda: backend.relinearize(backend.mul(ct, ct)))


def test_bench_rotate(benchmark, backend, operands):
    ct, _ = operands
    benchmark(lambda: backend.rotate(ct, 1))


def test_bench_rescale(benchmark, backend, operands):
    ct, pt = operands
    prod = backend.mul_plain(ct, pt)
    benchmark(lambda: backend.rescale(prod))


def test_bench_ntt(benchmark):
    from repro.polymath import NttContext
    from repro.utils.primes import next_ntt_prime

    n = 4096
    ctx = NttContext(next_ntt_prime(45, 2 * n), n)
    data = np.arange(n, dtype=np.uint64) % 1000
    benchmark(lambda: ctx.forward(data))


def test_bench_bootstrap(benchmark):
    from repro.ckks import CkksContext

    params = CkksParameters(
        poly_degree=64, scale_bits=25, first_prime_bits=26,
        num_levels=22, secret_hamming_weight=8,
    )
    ctx = CkksContext(params, rotation_steps=[], seed=0)
    bs = ctx.make_bootstrapper()
    ct = ctx.encrypt(np.full(32, 0.2), level=0)
    benchmark.pedantic(lambda: bs.bootstrap(ct), rounds=1, iterations=1)
