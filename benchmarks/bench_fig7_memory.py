"""Figure 7 — memory usage, ANT-ACE vs Expert, CKKS-Keys dominant.

The paper reports an average 84.8 % evaluation-key memory reduction from
generating only the required keys at trimmed levels; we assert a large
reduction and that keys dominate both totals.
"""

from repro.evalharness import fig7


def test_fig7_memory_reduction(benchmark, models, scale, capsys):
    rows = benchmark.pedantic(
        lambda: fig7.memory_rows(models, scale), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + fig7.render(rows))
    for row in rows:
        assert row["ace"]["total"] < row["expert"]["total"], row["model"]
        assert row["key_reduction_pct"] > 30.0, row["model"]
        # keys dominate memory, as in the paper's RQ2 discussion
        assert row["expert"]["keys"] / row["expert"]["total"] > 0.5
    avg = fig7.average_key_reduction(rows)
    assert avg > 40.0, f"average key reduction only {avg:.1f}%"


def test_fig7_model_benchmark(benchmark, models, scale):
    benchmark.pedantic(
        lambda: fig7.memory_rows(models[:1], scale), rounds=1, iterations=1
    )
