"""Overload control under sustained 3x load: shed, batch, re-pack.

Two segments against the in-process serving stack:

* **soak** — ``repro.chaos.soak``: calibrate single-load capacity and
  unloaded p95 closed-loop, then offer ``3x capacity`` open-loop for a
  fixed wall-clock with a seeded fault plan installed (poisoned
  requests, executor job exceptions, backend latency spikes) and AIMD
  shedding on.  Containment means overload surfaces as typed transient
  rejections, never as wrong answers or unclassified failures.
* **repack** — a poisoned batch of size B: the chaos-attributed culprit
  fails alone and the healthy B-1 are re-executed as ONE batch whose
  payload bytes are bit-identical to directly executing those B-1
  requests — one extra execution, no singleton bisection.

Acceptance targets (the repo's bench_serve_router.py convention:
load-dependent gates are live only on hosts with >= 2 usable cores,
because on one core the open-loop load generator and the worker threads
contend for the same interpreter and the measured capacity is not
available during the soak; a 1-core box still measures and records
``load_gated: false``):

* goodput >= 70% of calibrated capacity under 3x offered load (>= 2
  cores);
* admitted requests' p95 <= 2x the unloaded p95 (>= 2 cores);
* zero non-transient client errors across the whole soak (every host);
* the repack segment recovers exactly B-1 healthy requests with at most
  one re-execution, bit-identical payloads, and zero bisections (every
  host).

Results are written to ``BENCH_overload.json`` (override with ``--out``).
Run:  PYTHONPATH=src python benchmarks/bench_overload.py [--quick]
"""

import argparse
import json
import os
from dataclasses import replace

from repro import chaos
from repro.chaos.soak import SoakConfig, build_soak_registry, render, run_soak
from repro.errors import ChaosError
from repro.serve import InferenceWorker, Metrics, execute_batch
from repro.serve.batcher import PendingRequest


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def bench_repack(entry) -> dict:
    """One poisoned batch of size B through the worker's repack path."""
    import numpy as np

    batch = entry.max_batch
    rng = np.random.default_rng(9)
    cts = [entry.encryptor(entry.backend, rng.uniform(-1, 1, size=(1, 24)))
           for _ in range(batch)]
    reqs = [PendingRequest(i + 1, "bench", entry.fingerprint, entry, ct)
            for i, ct in enumerate(cts)]
    reqs[0].poisoned = True  # the attributable culprit

    metrics = Metrics()
    with InferenceWorker(metrics=metrics, num_threads=1) as worker:
        worker._execute(list(reqs))
    responses = [r.future.result(timeout=30) for r in reqs]
    counters = metrics.snapshot()["counters"]

    # the reference: directly executing the same B-1 healthy ciphertexts
    direct = execute_batch(entry, [
        PendingRequest(100 + i, "ref", entry.fingerprint, entry, ct)
        for i, ct in enumerate(cts[1:])
    ])
    healthy = responses[1:]
    return {
        "batch": batch,
        "culprit_failed_typed": (not responses[0].ok
                                 and responses[0].error
                                 == ChaosError.__name__),
        "healthy_recovered": sum(1 for r in healthy if r.ok),
        "payloads_bit_identical": all(
            r.ok and r.payload == d.payload and r.slot_offset == d.slot_offset
            for r, d in zip(healthy, direct)),
        "repacks": counters.get("serve_batch_repacks", 0),
        "bisections": counters.get("serve_batch_bisections", 0),
        "re_executions": counters.get("serve_batches_total", 0),
    }


def bench(duration_s: float, calibration_requests: int) -> dict:
    registry, _ = build_soak_registry(max_batch=8, repack=True)
    entry = registry.get("gemm")

    config = replace(SoakConfig(), duration_s=duration_s,
                     calibration_requests=calibration_requests)
    report = run_soak(config, entry=entry)
    print(render(report))
    print()

    # the soak leaves no injector installed (chaos.active restores), so
    # the repack segment's poisoning is the explicit flag, not chaos
    assert chaos.current() is None
    repack = bench_repack(entry)

    stats = {
        "soak": report,
        "repack": repack,
        "goodput_fraction": report["goodput_fraction_of_capacity"],
        "admitted_p95_over_unloaded": report["admitted_p95_over_unloaded"],
        "non_transient_errors": report["non_transient_errors"],
        "usable_cpus": _usable_cpus(),
    }
    stats["load_gated"] = stats["usable_cpus"] >= 2
    return stats


def check(stats) -> list:
    failures = []
    if stats["load_gated"]:
        if stats["goodput_fraction"] < 0.70:
            failures.append(
                f"goodput under 3x overload must stay >= 70% of calibrated "
                f"capacity, got {stats['goodput_fraction'] * 100:.0f}%")
        if stats["admitted_p95_over_unloaded"] > 2.0:
            failures.append(
                f"admitted requests' p95 must stay <= 2x unloaded, got "
                f"{stats['admitted_p95_over_unloaded']:.2f}x")
    if stats["non_transient_errors"] > 0:
        failures.append(
            f"soak leaked {stats['non_transient_errors']} non-transient "
            f"client error(s); overload must surface as typed transient "
            f"rejections only")
    repack = stats["repack"]
    if not repack["culprit_failed_typed"]:
        failures.append("poisoned culprit did not fail with its typed error")
    if repack["healthy_recovered"] != repack["batch"] - 1:
        failures.append(
            f"repack must recover all B-1 healthy requests, got "
            f"{repack['healthy_recovered']}/{repack['batch'] - 1}")
    if not repack["payloads_bit_identical"]:
        failures.append(
            "repacked payloads differ from directly executing the same "
            "B-1 requests")
    if repack["repacks"] != 1 or repack["bisections"] != 0:
        failures.append(
            f"expected exactly 1 repack and 0 bisections, got "
            f"{repack['repacks']}/{repack['bisections']}")
    if repack["re_executions"] > 1:
        failures.append(
            f"repack must cost at most one re-execution, got "
            f"{repack['re_executions']}")
    return failures


def test_overload_contained_and_repack_recovers():
    stats = bench(duration_s=2.0, calibration_requests=24)
    failures = check(stats)
    assert not failures, "; ".join(failures)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="soak open-loop phase seconds")
    parser.add_argument("--out", default="BENCH_overload.json",
                        help="JSON results path")
    args = parser.parse_args()
    duration = 4.0 if args.quick else args.duration
    calibration = 32 if args.quick else 48

    stats = bench(duration, calibration)
    failures = check(stats)
    stats["pass"] = not failures

    with open(args.out, "w") as fh:
        json.dump(stats, fh, indent=2)

    gate = ("targets >= 70% goodput, <= 2.00x p95" if stats["load_gated"]
            else f"load gates off: {stats['usable_cpus']} usable core(s)")
    print(f"goodput:         {stats['goodput_fraction'] * 100:7.0f}% of "
          f"capacity  ({gate})")
    print(f"admitted p95:    {stats['admitted_p95_over_unloaded']:7.2f}x "
          f"unloaded")
    print(f"non-transient:   {stats['non_transient_errors']:7d}")
    repack = stats["repack"]
    print(f"repack:          {repack['healthy_recovered']}/"
          f"{repack['batch'] - 1} healthy recovered in "
          f"{repack['re_executions']} re-execution(s), bit-identical="
          f"{repack['payloads_bit_identical']}")
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"verdict:         {'PASS' if stats['pass'] else 'FAIL'}")
    raise SystemExit(0 if stats["pass"] else 1)


if __name__ == "__main__":
    main()
