"""Kernel-backend benchmark: numpy vs JIT backends on the NTT/RNS hot path.

Times the same workload under every *available* kernel backend
(:mod:`repro.polymath.kernels`):

* **ntt_forward / ntt_inverse** — stacked multi-limb transforms at real
  ciphertext shapes, the single hottest loop in the evaluator.
* **mul_mod** — the elementwise Hadamard product in NTT domain.
* **bsgs_apply** — a hoisted BSGS slot-matrix multiply (the kernel mix
  an encrypted linear layer actually executes).
* **end_to_end** — compile + encrypted inference of a small Gemm model
  through the real compiler/runtime stack.

Every backend must produce **bit-identical** ciphertexts; the benchmark
cross-checks NTT outputs and end-to-end results against the numpy
reference before reporting a speedup.

Gate: with numba installed on a host with >= 2 cores, the numba NTT
microkernel must be >= 1.5x the numpy backend.  Without numba the gate
is *skipped*, not failed — single-backend hosts still get reference
numbers.

Results are written to ``BENCH_kernel_backend.json`` (override with
``--out``).

Run:   PYTHONPATH=src python benchmarks/bench_kernel_backend.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time

import numpy as np

from repro.polymath import kernels
from repro.polymath.ntt import stacked_tables

#: speedup the numba NTT microkernel must reach over numpy on multi-core
NTT_SPEEDUP_TARGET = 1.5


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _available_backends() -> list[str]:
    names = ["numpy"]
    for name in ("numba", "cuda"):
        if kernels.backend_available(name):
            names.append(name)
    return names


# ----------------------------------------------------------------------
# microkernels: NTT + mul_mod at ciphertext shapes
# ----------------------------------------------------------------------

def bench_micro(backend_name: str, degree: int, repeats: int,
                reference: dict | None) -> dict:
    from repro.ckks import CkksParameters

    params = CkksParameters(poly_degree=degree, scale_bits=40,
                            first_prime_bits=50, num_levels=4)
    moduli = tuple(params.moduli)
    tables = stacked_tables(degree, moduli)
    rng = np.random.default_rng(0)
    stack = np.stack([rng.integers(0, q, size=degree, dtype=np.uint64)
                      for q in moduli])
    other = np.stack([rng.integers(0, q, size=degree, dtype=np.uint64)
                      for q in moduli])
    q_col = np.array(moduli, dtype=np.uint64).reshape(-1, 1)

    backend = kernels.get_backend(backend_name)
    backend.warmup()

    fwd = backend.ntt_forward(stack.copy(), tables)
    inv = backend.ntt_inverse(fwd.copy(), tables)
    prod = backend.mul_mod(stack, other, q_col)
    row = {
        "degree": degree,
        "limbs": len(moduli),
        "ntt_forward_ms": _median_time(
            lambda: backend.ntt_forward(stack.copy(), tables), repeats) * 1e3,
        "ntt_inverse_ms": _median_time(
            lambda: backend.ntt_inverse(fwd.copy(), tables), repeats) * 1e3,
        "mul_mod_ms": _median_time(
            lambda: backend.mul_mod(stack, other, q_col), repeats) * 1e3,
    }
    if reference is None:
        row["bit_identical"] = True  # numpy IS the reference
        row["_check"] = (fwd, inv, prod)
    else:
        ref_fwd, ref_inv, ref_prod = reference["_check"]
        row["bit_identical"] = (np.array_equal(fwd, ref_fwd)
                                and np.array_equal(inv, ref_inv)
                                and np.array_equal(prod, ref_prod))
    return row


# ----------------------------------------------------------------------
# hoisted BSGS linear transform
# ----------------------------------------------------------------------

def bench_bsgs(backend_name: str, degree: int, repeats: int) -> dict:
    from repro.backend import ExactBackend
    from repro.ckks import CkksParameters
    from repro.ckks.linear import LinearTransform

    kernels.set_backend(backend_name)
    try:
        params = CkksParameters(poly_degree=degree, scale_bits=40,
                                first_prime_bits=50, num_levels=3)
        slots = params.num_slots
        rng = np.random.default_rng(0)
        lt = LinearTransform(rng.normal(size=(slots, slots)) / slots)
        be = ExactBackend(params, rotation_steps=lt.required_rotations(),
                          seed=0)
        ct = be.encrypt(rng.uniform(-1, 1, slots))
        lt.apply(be.ev, ct, hoisted=True)  # warm diagonal + key caches
        out = lt.apply(be.ev, ct, hoisted=True)
        return {
            "degree": degree,
            "apply_ms": _median_time(
                lambda: lt.apply(be.ev, ct, hoisted=True), repeats) * 1e3,
            "digest": int(np.bitwise_xor.reduce(
                np.concatenate([p.residues.ravel() for p in out.parts]))),
        }
    finally:
        kernels.set_backend("numpy")


# ----------------------------------------------------------------------
# end-to-end encrypted inference
# ----------------------------------------------------------------------

def _build_gemm_model(in_dim: int, out_dim: int):
    from repro.onnx import OnnxGraphBuilder, load_model_bytes, model_to_bytes

    rng = np.random.default_rng(0)
    builder = OnnxGraphBuilder("linear_infer")
    builder.add_input("image", [1, in_dim])
    builder.add_initializer(
        "fc.weight", (rng.normal(size=(out_dim, in_dim)) * 0.3)
        .astype(np.float32))
    builder.add_initializer(
        "fc.bias", rng.normal(size=(out_dim,)).astype(np.float32))
    builder.add_node("Gemm", ["image", "fc.weight", "fc.bias"],
                     outputs=["output"], transB=1)
    builder.add_output("output", [1, out_dim])
    return load_model_bytes(model_to_bytes(builder.build()))


def bench_end_to_end(backend_name: str, repeats: int) -> dict:
    from repro.ckks import CkksParameters
    from repro.compiler import ACECompiler, CompileOptions

    kernels.set_backend(backend_name)
    try:
        model = _build_gemm_model(32, 8)
        params = CkksParameters(poly_degree=256, scale_bits=30,
                                first_prime_bits=40, num_levels=4)
        program = ACECompiler(model, CompileOptions(
            exact_params=params, bootstrap_enabled=False,
            poly_mode="off")).compile()
        backend = program.make_exact_backend(params, seed=7)
        x = np.linspace(-0.5, 0.5, 32).reshape(1, 32)
        out = program.run(backend, x, check_plan=False)[0]
        return {
            "infer_ms": _median_time(
                lambda: program.run(backend, x, check_plan=False),
                repeats) * 1e3,
            "kernel_backend": program.stats["kernel_backend"],
            "digest": [round(float(v), 10)
                       for v in np.ravel(out)[:4]],
        }
    finally:
        kernels.set_backend("numpy")


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def run(quick: bool) -> dict:
    degree = 1024 if quick else 4096
    repeats = 3 if quick else 11
    backends = _available_backends()
    results: dict = {
        "benchmark": "bench_kernel_backend",
        "mode": "quick" if quick else "full",
        "cpu_count": os.cpu_count() or 1,
        "backends": backends,
        "ntt_speedup_target": NTT_SPEEDUP_TARGET,
        "micro": {},
        "bsgs": {},
        "end_to_end": {},
    }
    reference = None
    for name in backends:
        row = bench_micro(name, degree, repeats, reference)
        if reference is None:
            reference = row
        results["micro"][name] = {k: v for k, v in row.items()
                                  if not k.startswith("_")}
        results["bsgs"][name] = bench_bsgs(name, 256 if quick else 1024,
                                           repeats)
        results["end_to_end"][name] = bench_end_to_end(name, repeats)
    ref_micro = results["micro"]["numpy"]
    for name in backends:
        micro = results["micro"][name]
        micro["ntt_speedup"] = (ref_micro["ntt_forward_ms"]
                                / micro["ntt_forward_ms"])
    return results


def check(results: dict) -> list[str]:
    """Gate failures; empty list means pass (or nothing to gate)."""
    failures = []
    for name, row in results["micro"].items():
        if not row["bit_identical"]:
            failures.append(f"{name}: NTT/mul_mod outputs differ from numpy")
    digests = {row["digest"] for row in results["bsgs"].values()}
    if len(digests) > 1:
        failures.append(f"BSGS ciphertext digests differ: {digests}")
    e2e = {tuple(row["digest"]) for row in results["end_to_end"].values()}
    if len(e2e) > 1:
        failures.append(f"end-to-end outputs differ across backends: {e2e}")
    if "numba" in results["micro"] and results["cpu_count"] >= 2:
        speedup = results["micro"]["numba"]["ntt_speedup"]
        if speedup < results["ntt_speedup_target"]:
            failures.append(
                f"numba NTT speedup {speedup:.2f}x < "
                f"{results['ntt_speedup_target']:.1f}x target "
                f"({results['cpu_count']} cores)"
            )
    return failures


def test_kernel_backends_identical_and_fast():
    results = run(quick=True)
    assert not check(results), check(results)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / fewer repeats for CI")
    parser.add_argument("--out", default="BENCH_kernel_backend.json",
                        help="where to write the JSON results")
    args = parser.parse_args()
    results = run(quick=args.quick)
    for name in results["backends"]:
        micro = results["micro"][name]
        print(
            f"{name:7s} N={micro['degree']} x{micro['limbs']} limbs: "
            f"ntt_fwd {micro['ntt_forward_ms']:8.3f} ms  "
            f"ntt_inv {micro['ntt_inverse_ms']:8.3f} ms  "
            f"mul_mod {micro['mul_mod_ms']:8.3f} ms  "
            f"speedup {micro['ntt_speedup']:5.2f}x  "
            f"bit-identical={micro['bit_identical']}"
        )
        print(
            f"{'':7s} bsgs apply {results['bsgs'][name]['apply_ms']:8.3f} ms"
            f"   end-to-end {results['end_to_end'][name]['infer_ms']:8.3f} ms"
        )
    missing = [n for n in ("numba", "cuda")
               if n not in results["backends"]]
    for name in missing:
        print(f"{name:7s} not available on this host (skipped, not failed)")
    failures = check(results)
    results["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"results written to {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    if "numba" in results["backends"] and results["cpu_count"] >= 2:
        print(f"target (numba NTT >= {NTT_SPEEDUP_TARGET:.1f}x numpy): PASS")
    else:
        print("numba speedup gate: SKIPPED (numba or multi-core host "
              "not available)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
