"""Scale-out serving: 2-shard router vs one single-process server.

A single Python server process is GIL-bound: two models' worth of
concurrent FHE math time-slices one interpreter no matter how many
worker threads it has.  The router runs each model in its own shard
*process* (placement by the Figure-7 key-byte cost model puts one model
per shard here), so the same 2-model workload uses two cores.

Segments:

* **single** — both models in one ``InferenceServer`` (2 worker
  threads), concurrent clients, aggregate requests/sec;
* **router** — same workload through a 2-shard ``RouterServer``;
* **failover** — the router workload again, with shard 0 hard-killed
  mid-run: every request must still succeed (transient retries only)
  and the shard must come back (respawn counter).

Acceptance targets:

* router >= 1.5x single-process aggregate requests/sec — gated only on
  hosts with >= 2 usable cores (the repo's bench_parallel_exec.py
  convention: process-level scale-out cannot beat one process on one
  core; CI's runners are multi-core so the gate is live there, while a
  single-core box records ``speedup_gated: false`` and still measures);
* zero non-transient client errors and zero lost/duplicated responses
  across the shard kill — gated on every host.

Results are written to ``BENCH_serve_router.json`` (override with
``--out``).  Run:  PYTHONPATH=src python benchmarks/bench_serve_router.py
"""

import argparse
import json
import os
import threading
import time

import numpy as np

from repro.ckks import CkksParameters
from repro.onnx import OnnxGraphBuilder, load_model_bytes, model_to_bytes
from repro.serve import (
    InferenceServer,
    ModelRegistry,
    RemoteModelClient,
    RouterServer,
)


def build_model(name, seed):
    """A 3-layer GEMM MLP: enough FHE math per request that compute,
    not the extra router hop, dominates a request's cost."""
    rng = np.random.default_rng(seed)
    builder = OnnxGraphBuilder(name)
    builder.add_input("features", [1, 24])
    shapes = [(24, 24), (24, 24), (3, 24)]
    prev = "features"
    for i, (out_dim, in_dim) in enumerate(shapes):
        w = (rng.normal(size=(out_dim, in_dim)) * 0.3).astype(np.float32)
        b = rng.normal(size=(out_dim,)).astype(np.float32)
        builder.add_initializer(f"w{i}", w)
        builder.add_initializer(f"b{i}", b)
        out = "output" if i == len(shapes) - 1 else f"h{i}"
        builder.add_node("Gemm", [prev, f"w{i}", f"b{i}"], outputs=[out],
                         transB=1)
        prev = out
    builder.add_output("output", [1, 3])
    return builder.build()


MODELS = {"alpha": 0, "beta": 1}
SEEDS = {"alpha": 7, "beta": 8}


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _weights(model):
    return {t.name: t.to_numpy() for t in model.graph.initializer}


def _reference(weights, features):
    x = features
    for i in range(len(weights) // 2):
        x = x @ weights[f"w{i}"].T + weights[f"b{i}"]
    return x.ravel()


def drive(host, port, weights, clients_per_model, requests_per_client,
          on_midpoint=None):
    """Concurrent clients across both models; returns (elapsed, n, errors).

    ``on_midpoint`` fires once from the main thread roughly half-way
    through the run (the failover segment's kill switch).
    """
    errors: list[str] = []
    done = [0]
    lock = threading.Lock()
    total = 2 * clients_per_model * requests_per_client

    def worker(model_id, seed):
        rng = np.random.default_rng(seed)
        try:
            with RemoteModelClient(host, port, model_id) as client:
                for _ in range(requests_per_client):
                    features = rng.uniform(-1, 1, size=(1, 24))
                    scores = client.infer(features)
                    expected = _reference(weights[model_id], features)
                    with lock:
                        if not np.allclose(scores.ravel(), expected,
                                           atol=2e-2):
                            errors.append(f"{model_id}: wrong result")
                        done[0] += 1
        except Exception as exc:  # noqa: BLE001 - tallied, not raised
            with lock:
                errors.append(f"{model_id}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(model_id, 100 + i))
        for i, model_id in enumerate(
            list(MODELS) * clients_per_model)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    if on_midpoint is not None:
        while True:
            with lock:
                if done[0] >= total // 2 or errors:
                    break
            time.sleep(0.01)
        on_midpoint()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    return elapsed, total, errors


def bench(clients_per_model, requests_per_client):
    # one more level than the serving default: the 3-layer MLP is 5 deep
    params = CkksParameters(poly_degree=256, scale_bits=30,
                            first_prime_bits=40, num_levels=5)
    models = {name: build_model(name, seed) for name, seed in MODELS.items()}
    weights = {name: _weights(model) for name, model in models.items()}

    # single process: both models, one GIL
    registry = ModelRegistry()
    for name, model in models.items():
        registry.register(name, load_model_bytes(model_to_bytes(model)),
                          params=params, max_batch=4, seed=SEEDS[name])
    with InferenceServer(registry, num_threads=2, max_wait_s=0.002) as srv:
        single_s, n, errors = drive(srv.host, srv.port, weights,
                                    clients_per_model, requests_per_client)
    assert not errors, errors

    stats = {
        "models": len(models),
        "clients": 2 * clients_per_model,
        "requests": n,
        "single_rps": n / single_s,
    }

    with RouterServer(num_shards=2, dispatch_threads=4, shard_workers=2,
                      pool_size=2) as router:
        for name, model in models.items():
            router.add_model(name, model_to_bytes(model), params=params,
                             max_batch=4, seed=SEEDS[name])
        router_s, n, errors = drive(router.host, router.port, weights,
                                    clients_per_model, requests_per_client)
        assert not errors, errors
        stats["router_rps"] = n / router_s
        stats["placement"] = {
            str(k): v for k, v in router.placement.snapshot().items()}

        # failover: kill shard 0 half-way through the same workload
        respawns_before = router.metrics.counter(
            "router_shard_respawns_total")
        kill_s, n, errors = drive(
            router.host, router.port, weights,
            clients_per_model, requests_per_client,
            on_midpoint=lambda: router.shards[0].kill_process())
        stats["failover_rps"] = n / kill_s
        stats["failover_errors"] = errors
        stats["shard_respawns"] = (
            router.metrics.counter("router_shard_respawns_total")
            - respawns_before)
        stats["shards_alive_after"] = all(
            shard.alive() for shard in router.shards)

    stats["speedup"] = stats["router_rps"] / stats["single_rps"]
    stats["usable_cpus"] = _usable_cpus()
    stats["speedup_gated"] = stats["usable_cpus"] >= 2
    return stats


def check(stats):
    failures = []
    if stats["speedup_gated"] and stats["speedup"] < 1.5:
        failures.append(
            f"2-shard router must be >= 1.5x single-process aggregate "
            f"req/s, got {stats['speedup']:.2f}x")
    if stats["failover_errors"]:
        failures.append(
            f"shard kill leaked non-transient client errors: "
            f"{stats['failover_errors']!r}")
    if stats["shard_respawns"] < 1:
        failures.append("killed shard was never respawned")
    if not stats["shards_alive_after"]:
        failures.append("a shard is still dead after the failover run")
    return failures


def test_router_scales_out_and_survives_shard_kill():
    stats = bench(clients_per_model=2, requests_per_client=4)
    failures = check(stats)
    assert not failures, "; ".join(failures) + f" ({stats})"
    if stats["speedup_gated"]:
        assert stats["speedup"] >= 1.5


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload")
    parser.add_argument("--clients", type=int, default=3,
                        help="concurrent clients per model")
    parser.add_argument("--requests", type=int, default=6,
                        help="requests per client")
    parser.add_argument("--out", default="BENCH_serve_router.json",
                        help="JSON results path")
    args = parser.parse_args()
    clients = 2 if args.quick else args.clients
    requests = 4 if args.quick else args.requests

    stats = bench(clients, requests)
    failures = check(stats)
    stats["pass"] = not failures

    with open(args.out, "w") as fh:
        json.dump(stats, fh, indent=2)

    print(f"workload:        {stats['clients']} clients x "
          f"{stats['requests'] // stats['clients']} requests, "
          f"{stats['models']} models")
    print(f"single process:  {stats['single_rps']:8.2f} req/s")
    print(f"2-shard router:  {stats['router_rps']:8.2f} req/s")
    gate = ("target >= 1.50x" if stats["speedup_gated"]
            else f"not gated: {stats['usable_cpus']} usable core(s)")
    print(f"speedup:         {stats['speedup']:8.2f}x  ({gate})")
    print(f"failover:        {stats['failover_rps']:8.2f} req/s with a "
          f"shard killed mid-run ({stats['shard_respawns']:.0f} respawn)")
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"verdict:         {'PASS' if stats['pass'] else 'FAIL'}")
    raise SystemExit(0 if stats["pass"] else 1)


if __name__ == "__main__":
    main()
