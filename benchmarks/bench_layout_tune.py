"""Benchmark of the layout & BSGS autotuner (``--layout-tune search``).

Two rows:

* **gemm-bsgs** (gated) — a single 48x48 GEMM at 256 slots.  The
  heuristic picks the rotate-dedup GEMV (one rotation per matrix row,
  ~95 key switches); the cost-model search discovers the BSGS split
  (~2*sqrt(n) rotations) and must win end to end on the ExactBackend.
  Gates:

  - ``--layout-tune off`` and the default ``heuristic`` produce
    *bit-identical* outputs on a noise-injecting simulator (the noise
    offsets are a pure function of op structure, so identical bits mean
    identical compiled programs — IR text can't be compared because
    value ids come from a global counter);
  - the cost model's ranking agrees with the measured winner: both
    final CKKS programs are priced with one uniform analytic
    :class:`CostModel` and the mode it predicts faster must also
    measure faster;
  - measured end-to-end speedup search vs heuristic >= 1.15x
    (enforced on hosts with >= 2 cores; recorded elsewhere).

* **convnet** (recorded, not gated) — conv -> pool -> gemm on the
  noiseless simulator: records the adopted plan, predicted speedup and
  modeled seconds so layout regressions on the conv path stay visible.

Results are written to ``BENCH_layout_tune.json`` (override with
``--out``).

Run:   PYTHONPATH=src python benchmarks/bench_layout_tune.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time

import numpy as np

from repro.ckks import CkksParameters
from repro.compiler import ACECompiler, CompileOptions
from repro.evalharness.costmodel import CostModel
from repro.onnx import OnnxGraphBuilder, load_model_bytes, model_to_bytes
from repro.passes.opt import OpCostTable, key_switch_count

SPEEDUP_TARGET = 1.15
SPEEDUP_MIN_CORES = 2


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def build_gemm_model(features: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    builder = OnnxGraphBuilder("gemm")
    builder.add_input("x", [1, features])
    w = (rng.normal(size=(features, features)) * 0.3).astype(np.float32)
    bias = (rng.normal(size=(features,)) * 0.1).astype(np.float32)
    builder.add_node(
        "Gemm", ["x", builder.add_initializer("w", w),
                 builder.add_initializer("b", bias)],
        outputs=["output"], transB=1)
    builder.add_output("output", [1, features])
    return load_model_bytes(model_to_bytes(builder.build()))


def build_conv_model(seed: int = 0):
    rng = np.random.default_rng(seed)
    builder = OnnxGraphBuilder("convnet")
    builder.add_input("x", [1, 2, 8, 8])
    w = (rng.normal(size=(4, 2, 3, 3)) * 0.4).astype(np.float32)
    cur = builder.add_node("Conv", ["x", builder.add_initializer("w", w)],
                           strides=[2, 2], pads=[1, 1, 1, 1],
                           kernel_shape=[3, 3])
    cur = builder.add_node("GlobalAveragePool", [cur])
    cur = builder.add_node("Flatten", [cur], axis=1)
    fw = (rng.normal(size=(3, 4)) * 0.4).astype(np.float32)
    fb = rng.normal(size=(3,)).astype(np.float32)
    builder.add_node("Gemm", [cur, builder.add_initializer("fw", fw),
                              builder.add_initializer("fb", fb)],
                     outputs=["output"], transB=1)
    builder.add_output("output", [1, 3])
    return load_model_bytes(model_to_bytes(builder.build()))


def _modeled_seconds(program) -> float:
    """Price the final CKKS program with one uniform analytic model."""
    table = OpCostTable(CostModel(
        poly_degree=program.scheme.poly_degree,
        num_special_primes=program.scheme.num_special_primes,
    ))
    return table.function_cost(program.module.main())


def bench_gemm_bsgs(features: int, poly_degree: int, repeats: int) -> dict:
    """The gated row: heuristic vs search on one ExactBackend setup."""
    model = build_gemm_model(features)
    params = CkksParameters(poly_degree=poly_degree, scale_bits=30,
                            first_prime_bits=40, num_levels=4)
    x = np.random.default_rng(1).normal(size=(1, features)) * 0.5

    # gate 1: off == heuristic, bit for bit, on the noise-injecting sim
    # (noise offsets derive from op content, so equal bits <=> equal
    # compiled op structure; IR *text* is nondeterministic by design)
    sim_outs = {}
    for mode in ("off", "heuristic"):
        program = ACECompiler(model, CompileOptions(
            poly_mode="off", slots=params.num_slots,
            layout_tune=mode)).compile()
        backend = program.make_sim_backend(seed=5)
        sim_outs[mode] = program.run(backend, x, check_plan=False)[0]
    bit_identical = bool(np.array_equal(sim_outs["off"], sim_outs["heuristic"]))

    programs, times, modeled, key_switches = {}, {}, {}, {}
    for mode in ("heuristic", "search"):
        programs[mode] = ACECompiler(model, CompileOptions(
            exact_params=params, bootstrap_enabled=False, poly_mode="off",
            layout_tune=mode)).compile()
        modeled[mode] = _modeled_seconds(programs[mode])
        key_switches[mode] = key_switch_count(programs[mode].module)

    for mode in ("heuristic", "search"):
        program = programs[mode]
        backend = program.make_exact_backend(params, seed=0)
        program.run(backend, x)  # warm NTT tables / key stacks
        times[mode] = _median_time(
            lambda p=program, b=backend: p.run(b, x), repeats)
        programs[mode].note_measured_seconds(times[mode])

    layout = programs["search"].stats["layout"]
    speedup = times["heuristic"] / times["search"]
    predicted_faster = min(modeled, key=modeled.get)
    measured_faster = min(times, key=times.get)
    return {
        "model": "gemm-bsgs",
        "features": features,
        "poly_degree": poly_degree,
        "cpu_count": os.cpu_count() or 1,
        "bit_identical_off_vs_heuristic": bit_identical,
        "key_switches": key_switches,
        "modeled_s": modeled,
        "heuristic_s": times["heuristic"],
        "search_s": times["search"],
        "speedup": speedup,
        "predicted_faster": predicted_faster,
        "measured_faster": measured_faster,
        "ranking_agrees": predicted_faster == measured_faster,
        "plan": layout.get("plan", {}),
        "predicted_vector_speedup": layout.get(
            "predicted_vector_speedup"),
        "predicted_over_measured": layout.get("predicted_over_measured"),
        "gated": True,
    }


def bench_convnet() -> dict:
    """The recorded row: the conv path through the tuner."""
    model = build_conv_model()
    x = np.random.default_rng(2).normal(size=(1, 2, 8, 8)) * 0.5
    outs, programs = {}, {}
    for mode in ("heuristic", "search"):
        programs[mode] = ACECompiler(model, CompileOptions(
            poly_mode="off", slots=128, layout_tune=mode)).compile()
        backend = programs[mode].make_sim_backend(seed=0, inject_noise=False)
        outs[mode] = programs[mode].run(backend, x, check_plan=False)[0]
    layout = programs["search"].stats["layout"]
    return {
        "model": "convnet",
        "modeled_s": {m: _modeled_seconds(p) for m, p in programs.items()},
        "noiseless_sim_identical": bool(
            np.allclose(outs["heuristic"], outs["search"], atol=1e-6)),
        "plan": layout.get("plan", {}),
        "predicted_vector_speedup": layout.get("predicted_vector_speedup"),
        "gated": False,
    }


def run(quick: bool) -> dict:
    repeats = 3 if quick else 5
    gemm = bench_gemm_bsgs(features=48, poly_degree=512, repeats=repeats)
    conv = bench_convnet()
    return {
        "benchmark": "bench_layout_tune",
        "mode": "quick" if quick else "full",
        "speedup_target": SPEEDUP_TARGET,
        "speedup_min_cores": SPEEDUP_MIN_CORES,
        "runs": [gemm, conv],
    }


def check(results: dict) -> list[str]:
    """Gate failures (empty list = pass)."""
    failures = []
    for row in results["runs"]:
        name = row["model"]
        if row.get("noiseless_sim_identical") is False:
            failures.append(
                f"{name}: heuristic and search disagree on the "
                f"noiseless simulator")
        if not row["gated"]:
            continue
        if not row["bit_identical_off_vs_heuristic"]:
            failures.append(
                f"{name}: --layout-tune off is not bit-identical to the "
                f"default heuristic")
        if not row["ranking_agrees"]:
            failures.append(
                f"{name}: cost model predicts {row['predicted_faster']} "
                f"faster but {row['measured_faster']} measured faster")
        if row["cpu_count"] >= results["speedup_min_cores"]:
            if row["speedup"] < results["speedup_target"]:
                failures.append(
                    f"{name}: search speedup {row['speedup']:.2f}x below "
                    f"the {results['speedup_target']:.2f}x target")
    return failures


def test_layout_tune_beats_heuristic():
    results = run(quick=True)
    assert not check(results), check(results)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats for CI")
    parser.add_argument("--out", default="BENCH_layout_tune.json",
                        help="where to write the JSON results")
    args = parser.parse_args()
    results = run(quick=args.quick)
    for row in results["runs"]:
        if row["gated"]:
            ks = row["key_switches"]
            print(
                f"{row['model']:12s} N={row['poly_degree']}: key switches "
                f"{ks['heuristic']} -> {ks['search']}  heuristic "
                f"{row['heuristic_s']:.3f}s  search {row['search_s']:.3f}s  "
                f"speedup {row['speedup']:.2f}x  bit-identical="
                f"{row['bit_identical_off_vs_heuristic']}  ranking-agrees="
                f"{row['ranking_agrees']}"
            )
        else:
            print(
                f"{row['model']:12s} plan={row['plan']}  predicted vector "
                f"speedup {row['predicted_vector_speedup']:.2f}x  "
                f"noiseless-sim identical="
                f"{row['noiseless_sim_identical']}  [not gated]"
            )
    failures = check(results)
    results["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"results written to {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"targets (bit-identity, predicted ranking, speedup >= "
        f"{SPEEDUP_TARGET:.2f}x on >= {SPEEDUP_MIN_CORES} cores): PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
