"""Serving throughput: cross-request slot batching vs sequential.

A model compiled with ``batch_size = B`` pays one program execution per
*batch* instead of per request (Table 2 "Batching"); the serving layer's
batcher realises that win across independent requests arriving in one
queue.  This benchmark drives the real worker pool on ``ExactBackend``
(real RNS-CKKS) both ways and reports requests/sec:

* **sequential** — submit, wait, repeat: every request is its own
  program execution (the one-shot-script serving model);
* **batched** — submit all requests concurrently and let the batcher
  pack them into slot blocks.

Acceptance target: batched >= 1.5x sequential requests/sec, and a
batched request decrypts to the same result as an unbatched one.

Run:  PYTHONPATH=src python benchmarks/bench_serve_throughput.py
"""

import time

import numpy as np

from repro.ckks import CkksParameters
from repro.onnx import OnnxGraphBuilder, load_model_bytes, model_to_bytes
from repro.serve import InferenceWorker, Metrics, ModelRegistry

N_REQUESTS = 24
MAX_BATCH = 8


def build_registry():
    rng = np.random.default_rng(0)
    builder = OnnxGraphBuilder("gemm")
    builder.add_input("features", [1, 24])
    builder.add_initializer(
        "w", (rng.normal(size=(3, 24)) * 0.3).astype(np.float32))
    builder.add_initializer("b", rng.normal(size=(3,)).astype(np.float32))
    builder.add_node("Gemm", ["features", "w", "b"], outputs=["output"],
                     transB=1)
    builder.add_output("output", [1, 3])
    model = load_model_bytes(model_to_bytes(builder.build()))
    weights = {t.name: t.to_numpy() for t in model.graph.initializer}
    registry = ModelRegistry()
    # 512 slots / 8 blocks of 64: the 24-feature GEMM tiles 8 requests
    # into one ciphertext
    params = CkksParameters(poly_degree=1024, scale_bits=30,
                            first_prime_bits=40, num_levels=4)
    registry.register("gemm", model, params=params, max_batch=MAX_BATCH,
                      seed=7)
    return registry, weights


def run_serving(entry, ciphertexts, batched: bool):
    """Push every ciphertext through a fresh worker; return (elapsed, responses)."""
    metrics = Metrics()
    with InferenceWorker(metrics=metrics, num_threads=1,
                         max_wait_s=0.05 if batched else 0.0,
                         request_timeout_s=600.0) as worker:
        started = time.perf_counter()
        if batched:
            futures = [worker.submit(entry, "bench", ct)
                       for ct in ciphertexts]
            responses = [worker.wait(f, timeout_s=600) for f in futures]
        else:
            responses = []
            for ct in ciphertexts:
                future = worker.submit(entry, "bench", ct)
                responses.append(worker.wait(future, timeout_s=600))
        elapsed = time.perf_counter() - started
    assert all(r.ok for r in responses), [r.message for r in responses]
    return elapsed, responses, metrics.snapshot()


def bench(registry, weights):
    entry = registry.get("gemm")
    rng = np.random.default_rng(1)
    inputs = [rng.uniform(-1, 1, size=(1, 24)) for _ in range(N_REQUESTS)]
    cts = [entry.encryptor(entry.backend, x) for x in inputs]

    seq_s, seq_responses, _ = run_serving(entry, cts, batched=False)
    cts = [entry.encryptor(entry.backend, x) for x in inputs]  # fresh cts
    bat_s, bat_responses, bat_metrics = run_serving(entry, cts, batched=True)

    # correctness: batched == unbatched == plaintext reference
    for x, seq_r, bat_r in zip(inputs, seq_responses, bat_responses):
        expected = (x @ weights["w"].T + weights["b"]).ravel()
        alone = entry.decrypt_result(seq_r.payload, seq_r.slot_offset)
        together = entry.decrypt_result(bat_r.payload, bat_r.slot_offset)
        assert np.allclose(alone.ravel(), expected, atol=1e-3)
        assert np.allclose(together.ravel(), expected, atol=1e-3)
        assert np.allclose(together.ravel(), alone.ravel(), atol=1e-3)

    seq_rps = N_REQUESTS / seq_s
    bat_rps = N_REQUESTS / bat_s
    occupancy = bat_metrics["histograms"]["serve_batch_occupancy"]
    return {
        "requests": N_REQUESTS,
        "max_batch": entry.max_batch,
        "sequential_rps": seq_rps,
        "batched_rps": bat_rps,
        "speedup": bat_rps / seq_rps,
        "mean_batch_occupancy": occupancy["mean"],
    }


def test_slot_batching_beats_sequential():
    registry, weights = build_registry()
    stats = bench(registry, weights)
    assert stats["mean_batch_occupancy"] > 1.0, (
        "batches never coalesced: " + repr(stats))
    assert stats["speedup"] >= 1.5, (
        f"slot batching must be >= 1.5x sequential, got "
        f"{stats['speedup']:.2f}x ({stats})")


def main():
    registry, weights = build_registry()
    stats = bench(registry, weights)
    print(f"requests:             {stats['requests']}")
    print(f"compiled batch size:  {stats['max_batch']}")
    print(f"mean batch occupancy: {stats['mean_batch_occupancy']:.2f}")
    print(f"sequential:           {stats['sequential_rps']:8.2f} req/s")
    print(f"slot-batched:         {stats['batched_rps']:8.2f} req/s")
    print(f"speedup:              {stats['speedup']:8.2f}x")
    verdict = "PASS" if stats["speedup"] >= 1.5 else "FAIL"
    print(f"target (>= 1.50x):    {verdict}")


if __name__ == "__main__":
    main()
