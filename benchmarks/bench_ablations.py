"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation disables one compiler optimisation and measures the cost
delta with the same cost model as Figure 6, isolating where the paper's
speedup comes from:

* minimal-level vs full-chain bootstrapping (§4.4),
* lazy vs eager rescaling (the EVA-style waterline policy),
* exact rotation keys vs power-of-two composition (§2.2 fallback),
* rotation deduplication in the linear-map lowering (Listing 4's hoist).
"""

import numpy as np

from repro.backend import SchemeConfig, SimBackend
from repro.compiler import ACECompiler, CompileOptions
from repro.evalharness.costmodel import CostModel
from repro.expert import ExpertConfig, ExpertInference
from repro.nn import model_to_onnx, resnet_mini
from repro.onnx import load_model_bytes, model_to_bytes
from repro.passes.frontend import onnx_to_nn


def _mini_proto(seed=1):
    model = resnet_mini(num_classes=4, in_channels=1, base_width=4,
                        input_size=8, blocks=2, seed=seed)
    return load_model_bytes(model_to_bytes(model_to_onnx(model))), model


def _run_cost(program):
    backend = program.make_sim_backend(inject_noise=False, seed=0)
    rng = np.random.default_rng(0)
    img = rng.normal(size=(1, 1, 8, 8)) * 0.5
    program.run(backend, img, check_plan=False)
    cm = CostModel(program.scheme.poly_degree)
    return cm.total_seconds(backend.trace), backend.trace


def test_ablation_minimal_level_bootstrap(benchmark, capsys):
    """§4.4: refreshing to minimal levels must beat full-chain refreshes."""
    proto, _ = _mini_proto()
    opts = dict(sign_iterations=3, poly_mode="off")
    minimal = ACECompiler(proto, CompileOptions(
        **opts, minimal_level_bootstrap=True)).compile()
    full = ACECompiler(proto, CompileOptions(
        **opts, minimal_level_bootstrap=False)).compile()
    cost_min, trace_min = benchmark.pedantic(
        lambda: _run_cost(minimal), rounds=1, iterations=1)
    cost_full, trace_full = _run_cost(full)
    boots_min = [l for (_, op, l), n in trace_min.counts.items()
                 if op == "bootstrap"]
    boots_full = [l for (_, op, l), n in trace_full.counts.items()
                  if op == "bootstrap"]
    with capsys.disabled():
        print(f"\nablation bootstrap-target: minimal {cost_min:.2f}s "
              f"(targets {sorted(set(boots_min))}) vs full {cost_full:.2f}s "
              f"(targets {sorted(set(boots_full))})")
    assert boots_min and boots_full
    # the shallow final region gets a much lower refresh target
    assert min(boots_min) < min(boots_full)
    assert cost_min < cost_full


def test_ablation_rotation_dedup(benchmark, capsys):
    """Rotation dedup: distinct offsets << raw contribution count."""
    proto, _ = _mini_proto()
    program = benchmark.pedantic(
        lambda: ACECompiler(proto, CompileOptions(
            sign_iterations=3, poly_mode="off")).compile(),
        rounds=1, iterations=1,
    )
    fn = program.module.main()
    rotations = fn.op_count("ckks.rotate")
    muls = fn.op_count("ckks.mul")
    with capsys.disabled():
        print(f"\nablation rotation-dedup: {rotations} rotations for "
              f"{muls} multiplications")
    # without dedup every conv contribution would carry its own rotation:
    # rotations would be >= the plaintext-mul count
    assert rotations < muls


def test_ablation_pow2_rotation_composition(benchmark, capsys):
    """§2.2 fallback: composing from pow2 keys costs extra key switches."""
    proto, _ = _mini_proto()
    module = onnx_to_nn(proto)
    scheme = SchemeConfig(poly_degree=512, scale_bits=40,
                          first_prime_bits=50, num_levels=28)

    def run(pow2):
        backend = SimBackend(scheme, inject_noise=False, seed=0)
        expert = ExpertInference(module, backend, ExpertConfig(
            sign_iterations=4, power_of_two_rotations=pow2))
        rng = np.random.default_rng(0)
        expert.run(rng.normal(size=(1, 1, 8, 8)) * 0.5)
        return backend.trace.total("rotate"), len(expert.used_rotation_steps)

    rot_exact, keys_exact = benchmark.pedantic(
        lambda: run(False), rounds=1, iterations=1)
    rot_pow2, keys_pow2 = run(True)
    with capsys.disabled():
        print(f"\nablation pow2-composition: exact keys -> {rot_exact} "
              f"rotations / {keys_exact} keys; pow2 -> {rot_pow2} "
              f"rotations / {keys_pow2} keys")
    assert rot_pow2 > rot_exact      # composition costs time...
    assert keys_pow2 < keys_exact    # ...to save key memory


def test_ablation_simd_batching(benchmark, capsys):
    """Table 2 "Batching": B images share every homomorphic op, so the
    modelled per-image cost divides by B."""
    proto, model = _mini_proto()
    single = ACECompiler(proto, CompileOptions(
        sign_iterations=3, poly_mode="off", batch_size=1, slots=256,
    )).compile()
    batched = benchmark.pedantic(
        lambda: ACECompiler(proto, CompileOptions(
            sign_iterations=3, poly_mode="off", batch_size=4, slots=1024,
        )).compile(),
        rounds=1, iterations=1,
    )
    assert batched.stats["ckks_ops"] == single.stats["ckks_ops"]
    rng = np.random.default_rng(0)
    images = [rng.normal(size=(1, 1, 8, 8)) * 0.5 for _ in range(4)]
    backend = batched.make_sim_backend(inject_noise=False, seed=0)
    results = batched.run_batch(backend, images)
    cm = CostModel(batched.scheme.poly_degree)
    per_image = cm.total_seconds(backend.trace) / len(images)
    single_backend = single.make_sim_backend(inject_noise=False, seed=0)
    single.run(single_backend, images[0], check_plan=False)
    cm1 = CostModel(single.scheme.poly_degree)
    single_cost = cm1.total_seconds(single_backend.trace)
    with capsys.disabled():
        print(f"\nablation batching: {single_cost:.2f}s/image unbatched vs "
              f"{per_image:.2f}s/image at batch 4 "
              f"(N grows {single.scheme.poly_degree} -> "
              f"{batched.scheme.poly_degree})")
    # larger N makes each op costlier, but the 4x sharing dominates
    assert per_image < single_cost
    for image, got in zip(images, results):
        assert got.ravel().argmax() == model.forward(image).ravel().argmax()


def test_ablation_lazy_rescale(benchmark, capsys):
    """The waterline policy rescales accumulation chains once."""
    proto, _ = _mini_proto()
    program = benchmark.pedantic(
        lambda: ACECompiler(proto, CompileOptions(
            sign_iterations=3, poly_mode="off")).compile(),
        rounds=1, iterations=1,
    )
    fn = program.module.main()
    # the lazy policy pays off inside accumulation chains, i.e. the Conv
    # regions (ReLU polynomial chains genuinely need a rescale per mul)
    conv_rescales = sum(1 for op in fn.body if op.opcode == "ckks.rescale"
                        and op.attrs.get("region") == "Conv")
    conv_muls = sum(1 for op in fn.body if op.opcode == "ckks.mul"
                    and op.attrs.get("region") == "Conv")
    with capsys.disabled():
        print(f"\nablation lazy-rescale (Conv regions): {conv_rescales} "
              f"rescales for {conv_muls} multiplications "
              f"(eager would need ~{conv_muls})")
    assert conv_rescales < 0.5 * conv_muls
