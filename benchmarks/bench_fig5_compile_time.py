"""Figure 5 — compile-time breakdown per IR level.

Regenerates the per-model compile times with their NN/VECTOR/SIHE/CKKS/
POLY percentage split and checks the paper's qualitative findings: the
VECTOR level (layout selection + conv/matmul lowering) dominates.
"""

import pytest

from repro.evalharness import fig5
from repro.evalharness.models import compiled_model


def test_fig5_compile_time_breakdown(benchmark, models, scale, capsys):
    rows = benchmark.pedantic(
        lambda: fig5.compile_time_rows(models, scale), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + fig5.render(rows))
    assert len(rows) == len(models)
    for row in rows:
        assert row["total_s"] > 0
        # the paper's observation: the VECTOR level (layout + conv/matmul
        # lowering) is a dominant share of compile time
        assert row["VECTOR"] >= 20.0
        assert row["VECTOR"] + row["SIHE"] >= 45.0
        # percentages sum to ~100
        total_pct = sum(
            row[lvl]
            for lvl in ("NN", "VECTOR", "SIHE", "CKKS", "POLY", "Others")
        )
        assert total_pct == pytest.approx(100.0, abs=1.0)


def test_fig5_compile_benchmark(benchmark, models, scale):
    """pytest-benchmark timing of one full compilation (smallest model)."""
    name = models[0]
    compiled_model(name, scale)  # warm the training cache

    def compile_once():
        compiled_model.cache_clear()
        return compiled_model(name, scale)

    program, _, _ = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    assert program.stats["ckks_ops"] > 0
