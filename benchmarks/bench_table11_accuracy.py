"""Table 11 — unencrypted vs encrypted inference accuracy.

The paper reports an average 0.43 % accuracy loss over 1000 images; its
artifact quick mode uses 10 images.  We run a small image budget per
model (REPRO_EVAL_IMAGES) and assert the loss stays small and the
encrypted model agrees with the cleartext one on most predictions.
"""

import os

from repro.evalharness import table11


def eval_images() -> int:
    return int(os.environ.get("REPRO_EVAL_IMAGES", "5"))


def test_table11_accuracy_gap(benchmark, models, scale, capsys):
    rows = benchmark.pedantic(
        lambda: table11.accuracy_rows(models, scale,
                                      num_images=eval_images()),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + table11.render(rows))
    for row in rows:
        assert row["prediction_agreement"] >= 0.8, row["model"]
        # encrypted accuracy within one image of cleartext accuracy
        assert abs(row["loss_pct"]) <= 100.0 / eval_images() + 1e-9, row
    assert abs(table11.average_loss(rows)) <= 100.0 / eval_images()


def test_table11_single_image_benchmark(benchmark, models, scale):
    from repro.evalharness.models import compiled_model

    program, _model, dataset = compiled_model(models[0], scale)
    backend = program.make_sim_backend(inject_noise=True, seed=0)
    image, _ = dataset.sample(1, seed=3)
    benchmark.pedantic(
        lambda: program.run(backend, image[0][None], check_plan=False),
        rounds=1, iterations=1,
    )
